"""Measured per-domain kernel autotuning for ``kernel="auto"``.

The solid-fraction heuristic the solver shipped with picks a *plausible*
kernel, but the GPGPU tuning literature (Habich et al., arXiv:1112.0850;
Calore et al., arXiv:1703.00185) is unambiguous that the best
kernel/layout choice is machine- and sub-domain-dependent: the
crossover between dense, sparse-compacted and AA-pattern streaming
moves with obstacle geometry, grid shape and cache sizes.  This module
replaces guessing with a short micro-benchmark.

``choose_kernel(solver)`` probes every *eligible* candidate kernel
(``aa``, ``fused``, ``sparse``, ``split``) for a few warm-up plus timed
steps on (a crop of) the solver's actual domain — same dtype, same
solid mask, same relaxation time — and picks the fastest.  Decisions
are cached per ``(shape, dtype, solid-fraction bucket, candidate set,
periodicity, phase-driven)`` so a cluster with many same-shaped ranks
(or repeated runs in one process) probes once per distinct
configuration, not once per rank.

Determinism: micro-benchmarks jitter, so the raw argmax would flap on
near ties.  The winner is instead the *first* kernel in a fixed
priority order (:data:`PRIORITY` — most memory-frugal first) whose
measured rate is within :data:`MARGIN` of the best; only a decisive
(>8%) win can displace an earlier-priority kernel.  All candidates are
bit-identical, so a flapped choice can never change physics — only the
wall clock.

Probe cost is bounded by :data:`PROBE_MAX_CELLS`: over-size domains are
probed on a corner crop (halving the longest axis until under the
bound), which preserves the solid-geometry character that drives the
dense/sparse crossover while keeping the probe a few percent of a
100-step run (recorded as ``autotune_overhead`` in the benchmarks).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

#: Probe crops the domain (halving the longest axis) until at or under
#: this many cells.
PROBE_MAX_CELLS = 48000
#: Un-timed steps per candidate (kernel construction, cache warm-up).
WARM_STEPS = 2
#: Timed steps per candidate (even so the AA pair cadence is complete).
TIMED_STEPS = 2
#: Timing repetitions per candidate; the best (minimum) time is kept,
#: so a scheduler preemption during one repetition cannot make a fast
#: kernel look slow (micro-benchmarks must be robust to noise, not
#: averaged into it).
TIMING_REPS = 3
#: A candidate must beat the best rate times this to displace an
#: earlier-priority kernel.
MARGIN = 0.92
#: Tie-break order: prefer the smaller-working-set kernel.
PRIORITY = ("aa", "fused", "sparse", "split")
#: Sparse compaction only pays once a real fraction of sites is solid;
#: below this the candidate is not even probed.
SPARSE_PROBE_MIN_FRACTION = 0.25
#: Distribution layouts the probe can compare (SoA first: it is the
#: allocation default and wins priority ties within a kernel).
LAYOUTS = ("soa", "aos")
#: Kernels whose throughput is layout-sensitive enough to probe both
#: layouts when the solver requests ``layout="auto"`` (the sparse
#: kernel requires SoA; split gains nothing from AoS).
LAYOUT_KERNELS = ("aa", "fused")


def rate_key(kernel: str, layout: str) -> str:
    """Rates-dict key for a (kernel, layout) pair.

    SoA entries keep the bare kernel name (the historical key, so
    reports and baselines stay comparable); AoS entries are suffixed
    ``"kernel/aos"``.
    """
    return kernel if layout == "soa" else f"{kernel}/{layout}"


@dataclass(frozen=True)
class KernelChoice:
    """A resolved autotune decision."""
    kernel: str
    reason: str
    #: Measured MLUPS per candidate pair, keyed by :func:`rate_key`
    #: (empty when no probe was needed).
    rates: dict[str, float] = field(default_factory=dict)
    probed: bool = False
    #: Distribution layout the winning probe ran with.
    layout: str = "soa"

    def cost_density(self) -> float | None:
        """Measured seconds-per-cell of the chosen kernel, or None.

        This is the probe-rate signal the weighted decomposition
        consumes (:func:`repro.core.balance.rates_cost_field`): a rank
        whose chosen kernel probed at ``r`` MLUPS costs ``1 / (r *
        1e6)`` seconds per lattice cell, so faster (sparse) ranks
        attract proportionally more cells when cuts are sized.
        """
        rate = (self.rates.get(rate_key(self.kernel, self.layout))
                or self.rates.get(self.kernel))
        if not rate or rate <= 0.0:
            return None
        return 1.0 / (float(rate) * 1e6)


_CACHE: dict[tuple, KernelChoice] = {}


def clear_autotune_cache() -> None:
    """Drop all cached decisions (tests / benchmark isolation)."""
    _CACHE.clear()


def still_eligible(solver, kind: str) -> bool:
    """Whether a previously chosen kernel can still run on ``solver``.

    Re-checked every step because eligibility can drift after the probe
    (e.g. a boundary handler appended post-construction).
    """
    from repro.lbm.aa import AAStepKernel
    from repro.lbm.fused import FusedStepKernel
    from repro.lbm.sparse import SparseStepKernel
    if kind == "split":
        return True
    if kind == "fused":
        return (solver.fused and not solver.phase_driven
                and FusedStepKernel.eligible(solver))
    if kind == "sparse":
        return SparseStepKernel.eligible(solver)
    if kind == "aa":
        return (not solver.phase_driven and AAStepKernel.eligible(solver))
    return False


def candidate_kernels(solver) -> tuple[str, ...]:
    """Eligible probe candidates for ``solver``, in priority order.

    ``split`` is always a candidate (it is every kernel's fallback).
    Whole-step-only kernels (``fused``, ``aa``) are excluded when the
    solver is phase-driven by a cluster driver, and ``fused=False``
    keeps its historic meaning as an escape hatch to phase-split.
    ``sparse`` is considered only once the solid fraction could
    plausibly pay for compaction (:data:`SPARSE_PROBE_MIN_FRACTION`).
    """
    from repro.lbm.sparse import SparseStepKernel
    cands = [k for k in ("aa", "fused") if still_eligible(solver, k)]
    if (SparseStepKernel.eligible(solver)
            and solver.solid_fraction >= SPARSE_PROBE_MIN_FRACTION):
        cands.append("sparse")
    cands.append("split")
    return tuple(cands)


def candidate_pairs(solver) -> tuple[tuple[str, str], ...]:
    """Eligible (kernel, layout) probe pairs, in priority order.

    Layout becomes a second autotune axis only when the solver asked
    for it (``layout="auto"``) and only for the layout-sensitive
    kernels (:data:`LAYOUT_KERNELS`); every other candidate is paired
    with the solver's current concrete layout.
    """
    probe_layouts = getattr(solver, "layout_requested", "soa") == "auto"
    base = getattr(solver, "layout", "soa")
    pairs: list[tuple[str, str]] = []
    for k in candidate_kernels(solver):
        if probe_layouts and k in LAYOUT_KERNELS:
            pairs.extend((k, layout) for layout in LAYOUTS)
        else:
            pairs.append((k, base))
    return tuple(pairs)


def _active_faces(solver) -> tuple[tuple[int, str], ...]:
    """``(axis, side)`` of every face-resident boundary handler."""
    faces = []
    for b in solver.boundaries:
        axis = getattr(b, "axis", None)
        side = getattr(b, "side", None)
        if axis is not None and side in ("low", "high"):
            faces.append((int(axis), side))
    return tuple(faces)


def _probe_shape(shape: tuple[int, ...],
                 faces: tuple[tuple[int, str], ...] = ()) -> tuple[int, ...]:
    """Crop ``shape`` to the probe budget, boundary-aware.

    Axes carrying no active boundary face are halved first (longest
    first), so a bounded domain's inlet/outflow faces stay inside the
    probe and their handler cost is measured, not ignored.  If the
    budget still isn't met, axes with a face on only one side are
    halved too (the caller anchors the crop to that side); axes with
    active faces on *both* sides are never cropped.
    """
    sides: dict[int, set] = {}
    for axis, side in faces:
        sides.setdefault(axis, set()).add(side)
    dims = list(shape)
    while int(np.prod(dims)) > PROBE_MAX_CELLS:
        free = [a for a in range(len(dims))
                if a not in sides and dims[a] > 2]
        single = [a for a in sides
                  if len(sides[a]) == 1 and dims[a] > 2]
        pool = free or single
        if not pool:
            break
        ax = max(pool, key=lambda a: dims[a])
        dims[ax] = max(2, dims[ax] // 2)
    return tuple(dims)


def _bc_signature(solver) -> tuple:
    """Hashable summary of the boundary configuration (types + faces).

    Part of the cache key: a periodic box and a bounded inlet/outflow
    domain of the same shape and occupancy must not share a cached
    decision — their kernel costs differ.
    """
    return tuple((type(b).__name__, getattr(b, "axis", None),
                  getattr(b, "side", None)) for b in solver.boundaries)


def _cache_key(solver, cands: tuple) -> tuple:
    bucket = int(round(solver.solid_fraction * 20))
    return (solver.shape, str(solver.dtype), bucket, cands,
            solver.periodic, solver.phase_driven, _bc_signature(solver),
            getattr(solver, "layout_requested", "soa"))


def _probe_rates(solver, cands: tuple[tuple[str, str], ...],
                 ) -> dict[str, float]:
    """Measured MLUPS per candidate pair on a crop of the domain.

    The probe replicates the solver's real configuration — same dtype,
    solid crop, periodicity and (shape-independent) boundary handlers —
    so the measured rate includes the boundary-closure cost the chosen
    kernel will actually pay.  The crop is anchored so every active
    boundary face survives (asserted).
    """
    from repro.lbm.boundaries import EquilibriumVelocityInlet, OutflowBoundary
    from repro.lbm.solver import LBMSolver
    faces = _active_faces(solver)
    pshape = _probe_shape(solver.shape, faces)
    crop = []
    for a, n in enumerate(pshape):
        full = solver.shape[a]
        face_sides = {side for axis, side in faces if axis == a}
        if face_sides == {"high"}:
            crop.append(slice(full - n, full))
        else:
            crop.append(slice(0, n))
    crop = tuple(crop)
    for axis, side in faces:
        face_idx = 0 if side == "low" else solver.shape[axis] - 1
        assert crop[axis].start <= face_idx < crop[axis].stop, (
            f"probe crop {crop} lost the active boundary face "
            f"(axis {axis}, {side})")
    solid = np.ascontiguousarray(solver.solid[crop])
    # Face handlers are shape-independent (they slice whatever array
    # they are applied to), so the probe can share the solver's own
    # instances; anything else (e.g. Bouzidi link lists are
    # shape-bound) is omitted — those configurations fall back to the
    # split-only candidate set anyway.
    boundaries = [b for b in solver.boundaries
                  if isinstance(b, (EquilibriumVelocityInlet,
                                    OutflowBoundary))]
    cells = float(np.prod(pshape))
    rates: dict[str, float] = {}
    for kern, layout in cands:
        probe = LBMSolver(pshape, tau=solver.collision.tau, solid=solid,
                          boundaries=boundaries, periodic=solver.periodic,
                          dtype=solver.dtype, kernel=kern, layout=layout,
                          sparse_threshold=solver.sparse_threshold,
                          autotune="heuristic")
        probe.counters.enabled = False
        probe.step(WARM_STEPS)
        dt = float("inf")
        for _ in range(TIMING_REPS):
            t0 = time.perf_counter()
            probe.step(TIMED_STEPS)
            dt = min(dt, time.perf_counter() - t0)
        rates[rate_key(kern, layout)] = cells * TIMED_STEPS / max(dt, 1e-9) / 1e6
    return rates


def _resolve(solver, pairs: tuple[tuple[str, str], ...]) -> KernelChoice:
    """Probe ``pairs`` (cached) and pick the margin/priority winner."""
    rec = solver.counters
    live = rec is not None and rec.enabled
    metrics = getattr(solver, "metrics", None)
    metered = metrics is not None and metrics.enabled
    key = _cache_key(solver, pairs)
    cached = _CACHE.get(key)
    if cached is not None:
        if live:
            rec.add("autotune.cached", 0.0)
        if metered:
            metrics.counter("autotune.cache_hits").inc()
        return cached
    if live:
        with rec.phase("autotune.probe"):
            rates = _probe_rates(solver, pairs)
    else:
        rates = _probe_rates(solver, pairs)
    if metered:
        metrics.counter("autotune.probes").inc()
        metrics.counter("autotune.candidates_probed").inc(len(rates))
        metrics.gauge("autotune.best_mlups").set(max(rates.values()))
    best = max(rates.values())
    winner_k, winner_l = next(
        (k, layout) for k in PRIORITY for layout in LAYOUTS
        if rate_key(k, layout) in rates
        and rates[rate_key(k, layout)] >= MARGIN * best)
    label = rate_key(winner_k, winner_l)
    detail = ", ".join(f"{k}={rates[k]:.1f}" for k in rates)
    choice = KernelChoice(
        winner_k,
        f"measured: probe on {_probe_shape(solver.shape, _active_faces(solver))} "
        f"picked {label!r} (MLUPS: {detail})",
        rates=rates, probed=True, layout=winner_l)
    _CACHE[key] = choice
    return choice


def choose_kernel(solver) -> KernelChoice:
    """Resolve the measured (kernel, layout) choice for ``solver`` (cached).

    Single-candidate configurations (e.g. non-BGK collision, or a
    phase-driven rank whose solid fraction rules sparse out) skip the
    probe entirely — the autotuner never costs anything when there is
    no decision to make.
    """
    pairs = candidate_pairs(solver)
    if len(pairs) == 1:
        kern, layout = pairs[0]
        return KernelChoice(kern,
                            f"measured: only candidate is {kern!r}",
                            layout=layout)
    return _resolve(solver, pairs)


def choose_layout(solver, kernel: str) -> KernelChoice:
    """Resolve the measured layout for a *forced* kernel (cached).

    Used when a solver pins ``kernel=`` but leaves ``layout="auto"``
    (the cluster drivers' per-rank configuration): only the forced
    kernel's layout variants are probed.
    """
    pairs = tuple((kernel, layout) for layout in LAYOUTS)
    return _resolve(solver, pairs)
