"""Obstacle-mask helpers for flow setups.

The paper's geometry enters the solver exclusively as voxel masks and
cut-link fractions; these constructors build the common shapes used by
tests, examples, and the curved-boundary machinery.
"""

from __future__ import annotations

import numpy as np

from repro.lbm.lattice import D3Q19, Lattice


def sphere(shape, center, radius: float) -> np.ndarray:
    """Solid ball (voxelized)."""
    grids = np.ogrid[tuple(slice(0, s) for s in shape)]
    r2 = sum((g - c) ** 2 for g, c in zip(grids, center))
    return r2 < radius ** 2


def cylinder(shape, center_xy, radius: float, axis: int = 2) -> np.ndarray:
    """Solid cylinder along ``axis``."""
    if len(shape) != 3:
        raise ValueError("cylinder expects a 3D shape")
    other = [a for a in range(3) if a != axis]
    grids = np.ogrid[tuple(slice(0, s) for s in shape)]
    r2 = ((grids[other[0]] - center_xy[0]) ** 2
          + (grids[other[1]] - center_xy[1]) ** 2)
    return np.broadcast_to(r2 < radius ** 2, shape).copy()


def backward_facing_step(shape, step_height: int, step_length: int) -> np.ndarray:
    """The classic separating-flow geometry: a solid step on the floor
    at the inlet end."""
    solid = np.zeros(shape, dtype=bool)
    solid[:step_length, :, :step_height] = True
    return solid


def cut_links_for_sphere(shape, center, radius: float,
                         lattice: Lattice = D3Q19) -> list[tuple]:
    """Bouzidi ``(cell, link, q)`` triples for a spherical boundary.

    For every fluid cell with a link entering the sphere, the
    intersection fraction q is computed analytically from the
    ray-sphere equation — the 'location of the intersection of the
    boundary surfaces with the lattice links' the paper stores in
    textures (Sec 4.1/4.2).
    """
    center = np.asarray(center, dtype=np.float64)
    solid = sphere(shape, center, radius)
    links = []
    fluid_cells = np.argwhere(~solid)
    c = lattice.c
    for cell in fluid_cells:
        for i in range(1, lattice.Q):
            nb = cell + c[i]
            if ((nb < 0) | (nb >= np.array(shape))).any():
                continue
            if not solid[tuple(nb)]:
                continue
            # Solve |cell + t*c - center|^2 = radius^2 for t in (0, 1].
            d = c[i].astype(np.float64)
            f = cell.astype(np.float64) - center
            a = float(d @ d)
            b = 2.0 * float(f @ d)
            cc = float(f @ f) - radius * radius
            disc = b * b - 4 * a * cc
            if disc < 0:
                continue
            t = (-b - np.sqrt(disc)) / (2 * a)
            if not 0.0 < t <= 1.0:
                t = (-b + np.sqrt(disc)) / (2 * a)
            q = float(np.clip(t, 0.05, 1.0))
            links.append((tuple(int(x) for x in cell), i, q))
    return links
