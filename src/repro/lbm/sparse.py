"""Sparse fluid-only LBM kernel with indirect addressing.

The paper's headline demonstration (Sec 5) runs over a voxelized city
where a large fraction of lattice sites is building/ground solid, yet
the dense kernels sweep the full box and then *discard* the work on
solid sites (the masked collide, the ``where=solid`` restore in the
fused kernel).  Following Tomczak & Szafran's sparse-geometry GPU
scheme, :class:`SparseStepKernel` compacts the fluid sites into 1-D
arrays at construction and precomputes per-direction pull-stream
gather indices, so the per-step arithmetic and indexed memory traffic
are proportional to the fluid-cell count instead of the box volume.

Layout
------
The owning solver's ghost-padded ``fg`` array remains the *canonical*
storage: the halo exchange, the face/edge mailboxes of every cluster
backend, boundary handlers and ``gather_distributions`` all keep
reading and writing the same dense layers they always did, so the
distributed protocols stay bit-for-bit unchanged.  The kernel only
changes *how* the two heavy phases visit that storage:

``collide()``
    gathers the padded-flat fluid interior into a compact ``(Q, Nf)``
    workspace, runs moments -> equilibrium -> BGK relax -> forcing on
    the compact arrays (replicating the reference op order of
    ``macroscopic``/``equilibrium``/``BGKCollision`` exactly), and
    scatters the relaxed values back to the same flat indices.  Solid
    sites are simply never visited — the masked collide's contract.

``stream_bounce()``
    pull-streams with full-way bounce-back *folded into the gather
    table*.  For an interior fluid destination ``x`` and link ``i``
    the source is the flat index of ``x - c_i`` — whatever sits there
    (post-collide fluid, exchanged ghost, or a solid cell's preserved
    pre-collision distributions) is exactly what the dense
    stream-then-bounce pipeline would have delivered.  For a solid
    destination the two dense passes compose to
    ``f[i][x] = relaxed[opp(i)][x + c_i]``, so one gather from the
    opposite link at the mirrored offset reproduces stream +
    ``BounceBackNodes`` in a single write (the solver skips the dense
    bounce when the kernel ran; see ``LBMSolver._bounce_folded``).

Bit-exactness contract
----------------------
Both phases are **bit-identical** to the dense phase-split reference:
every floating-point operation is per-site and replicates the
reference op sequence (only commuted where IEEE-754 guarantees
identical rounding — see :mod:`repro.lbm.fused` for the precedent),
and the streaming fold is a pure re-indexing of exact copies.  The
cluster equality tests compare all three execution backends against
``LBMSolver.step()`` with ``np.array_equal``; mixed per-rank
fused/sparse selection must not move a single bit.

Eligibility matches the fused kernel: plain BGK collision and no
boundary handler overriding ``pre_stream``.
"""

from __future__ import annotations

import numpy as np

from repro.lbm.lattice import Lattice
from repro.lbm.streaming import shell_partition


class SparseStepKernel:
    """Fluid-compacted collide and fold-streamed bounce-back kernel.

    Parameters
    ----------
    solver:
        The owning :class:`~repro.lbm.solver.LBMSolver`.  Must use a
        plain :class:`~repro.lbm.collision.BGKCollision` operator.
    """

    def __init__(self, solver) -> None:
        from repro.lbm.collision import BGKCollision
        if type(solver.collision) is not BGKCollision:
            raise TypeError("SparseStepKernel requires a plain BGKCollision")
        lat: Lattice = solver.lattice
        dtype = solver.dtype
        pshape = solver.fg.shape[1:]
        if not (solver.fg.flags.c_contiguous
                and solver._fg_next.flags.c_contiguous):
            raise TypeError("SparseStepKernel needs C-contiguous buffers")
        self.solver = solver
        self.lattice = lat
        self.omega = dtype.type(solver.collision.omega)
        self._c = lat.c.astype(dtype)
        self._w = lat.w.astype(dtype)
        self._opp = [int(o) for o in lat.opp]
        self._one = dtype.type(1.0)
        self._zero = dtype.type(0.0)
        self._inv_cs2 = dtype.type(1.0 / lat.cs2)
        self._half_inv_cs4 = dtype.type(0.5 / lat.cs2 ** 2)
        self._half_inv_cs2 = dtype.type(0.5 / lat.cs2)

        # -- compact layout: flat indices into the padded (Q, P) view --
        # Padded-grid element strides (trailing axis fastest), so that
        # flat(x + c) == flat(x) + dot(c, strides) with no wraparound:
        # destinations are interior cells and |c| <= 1, so every source
        # stays inside the padded box.
        strides = np.ones(lat.D, dtype=np.intp)
        for ax in range(lat.D - 2, -1, -1):
            strides[ax] = strides[ax + 1] * pshape[ax + 1]
        self._link_off = [int(np.dot(lat.c[i], strides))
                          for i in range(lat.Q)]
        self._fl = self._flat_of_mask(solver.fluid, pshape)   # fluid interior
        self._sd = self._flat_of_mask(solver.solid, pshape)   # solid interior
        self.n_fluid = int(self._fl.size)
        self.n_solid = int(self._sd.size)
        # Shell/core split for the overlap protocol, built on demand.
        self._fl_shell: np.ndarray | None = None
        self._fl_core: np.ndarray | None = None

        # -- compact workspace (all sized by the fluid count) -----------
        nf = max(self.n_fluid, 1)
        ns = max(self.n_fluid, self.n_solid, 1)
        self._fc = np.empty((lat.Q, nf), dtype)
        self.rho = np.empty(nf, dtype)
        self.j = np.empty((lat.D, nf), dtype)
        self.u = np.empty((lat.D, nf), dtype)
        self.usq = np.empty(nf, dtype)
        self._cu = np.empty(nf, dtype)
        self._t = np.empty(nf, dtype)
        self._t2 = np.empty(nf, dtype)
        self._wr = np.empty(nf, dtype)
        self._bool = np.empty(nf, bool)
        self._isrc = np.empty(ns, np.intp)
        self._vals = np.empty(ns, dtype)
        if solver.counters is not None:
            solver.counters.alloc("sparse.workspace", 12)
            solver.counters.alloc("sparse.gather_tables",
                                  2 + (1 if self.n_solid else 0))

    # ------------------------------------------------------------------
    @staticmethod
    def eligible(solver) -> bool:
        """True if ``solver`` can run the sparse pipeline.

        Same contract as the fused kernel: plain BGK collision and no
        boundary handler overriding ``pre_stream`` (the fold never
        materialises the intermediate post-collision full field a
        Bouzidi snapshot would need... it does, in ``fg`` — but the
        split-phase ordering guarantees are shared with the fused
        path, so the two kernels advertise one eligibility rule).
        """
        from repro.lbm.fused import FusedStepKernel
        if getattr(solver, "layout", "soa") != "soa":
            # The compact gather tables flatten ``fg`` zero-copy as
            # ``(Q, P)`` with C-order strides; an AoS array cannot.
            return False
        return FusedStepKernel.eligible(solver)

    @staticmethod
    def _flat_of_mask(mask: np.ndarray, pshape: tuple[int, ...]) -> np.ndarray:
        """Padded-flat indices of the True cells of an unpadded mask.

        ``np.nonzero`` yields C-order (ascending) coordinates, so the
        gathers walk the padded array mostly monotonically.
        """
        coords = np.nonzero(mask)
        if coords[0].size == 0:
            return np.empty(0, dtype=np.intp)
        padded = tuple(c + 1 for c in coords)
        return np.ravel_multi_index(padded, pshape).astype(np.intp)

    def _shell_core_idx(self) -> tuple[np.ndarray, np.ndarray]:
        """Fluid flat-index subsets for the depth-1 shell and the core.

        The subsets tile the fluid set exactly, mirroring
        :func:`~repro.lbm.streaming.shell_partition` — collision is
        pointwise, so colliding them in two calls is bit-identical to
        one full pass.
        """
        if self._fl_shell is None:
            s = self.solver
            pshape = s.fg.shape[1:]
            slabs, _ = shell_partition(s.shape, depth=1)
            shell = np.zeros(s.shape, dtype=bool)
            for sl in slabs:
                shell[sl] = True
            self._fl_shell = self._flat_of_mask(s.fluid & shell, pshape)
            self._fl_core = self._flat_of_mask(s.fluid & ~shell, pshape)
        return self._fl_shell, self._fl_core

    def _flat2(self, arr: np.ndarray) -> np.ndarray:
        """Zero-copy ``(Q, P)`` view of a padded distribution array."""
        v = arr.view()
        v.shape = (self.lattice.Q, -1)   # raises if a copy would be needed
        return v

    # ------------------------------------------------------------------
    def collide(self) -> None:
        """BGK-collide the fluid interior through the compact arrays."""
        self._collide_idx(self._fl)

    def collide_shell(self) -> None:
        """Collide only the depth-1 boundary-shell fluid cells."""
        self._collide_idx(self._shell_core_idx()[0])

    def collide_core(self) -> None:
        """Collide the inner-core fluid cells (pairs with
        :meth:`collide_shell` under the overlap protocol)."""
        self._collide_idx(self._shell_core_idx()[1])

    def _collide_idx(self, idx: np.ndarray) -> None:
        """Gather -> moments -> equilibrium -> relax -> scatter on the
        fluid sites listed in ``idx`` (padded-flat indices).

        Replicates the dense masked pipeline bit-for-bit:
        :func:`~repro.lbm.macroscopic.macroscopic` moments (same
        reductions, same guarded division), the
        :func:`~repro.lbm.equilibrium.equilibrium` expression in its
        reference op order, the ``f + omega * (feq - f)`` relaxation
        and the cached per-direction forcing increment.
        """
        n = int(idx.size)
        if n == 0:
            return
        s = self.solver
        lat = self.lattice
        fg2 = self._flat2(s.fg)
        fc = self._fc[:, :n]
        for q in range(lat.Q):
            np.take(fg2[q], idx, out=fc[q])
        rho, j, u = self.rho[:n], self.j[:, :n], self.u[:, :n]
        usq, bl, wr = self.usq[:n], self._bool[:n], self._wr[:n]
        # -- moments (macroscopic(): rho = sum_i f_i; u = j / safe) ----
        fc.sum(axis=0, out=rho)
        np.einsum("qa,qn->an", self._c, fc, out=j)
        np.greater(rho, 0, out=bl)
        if bl.all():
            np.divide(j, rho, out=u)
        else:
            # safe = where(rho > 0, rho, 1); u = j / safe; u[rho <= 0] = 0
            np.copyto(wr, rho)
            np.logical_not(bl, out=bl)
            np.copyto(wr, self._one, where=bl)
            np.divide(j, wr, out=u)
            np.less_equal(rho, 0, out=bl)
            np.copyto(u, self._zero, where=bl)
        np.einsum("an,an->n", u, u, out=usq)
        # -- equilibrium + relax + forcing, direction by direction ----
        collision = s.collision
        add = (collision._force_add(s.dtype)
               if collision.force is not None else None)
        cu, t, t2 = self._cu[:n], self._t[:n], self._t2[:n]
        for i in range(lat.Q):
            # feq_i = (w_i rho) * (1 + 3 cu + (4.5 cu) cu - 1.5 usq),
            # evaluated in the reference op order of equilibrium().
            np.einsum("a,an->n", self._c[i], u, out=cu)
            np.multiply(cu, self._inv_cs2, out=t)
            t += self._one
            np.multiply(cu, self._half_inv_cs4, out=t2)
            t2 *= cu
            t += t2
            np.multiply(usq, self._half_inv_cs2, out=t2)
            t -= t2
            np.multiply(rho, self._w[i], out=wr)
            t *= wr
            # f + omega * (feq - f), the exact unfused relaxation.
            fci = fc[i]
            t -= fci
            t *= self.omega
            t += fci
            if add is not None:
                t += add[i]
            fg2[i][idx] = t
        if s.counters is not None and s.counters.enabled:
            s.counters.add("sparse.collide_sites", 0.0, allocs=0)

    # ------------------------------------------------------------------
    def stream_bounce(self) -> None:
        """Pull-stream with bounce-back folded into the gather table.

        Ghosts must already be filled (periodic wrap, zero-gradient
        copy, or the cluster halo exchange).  Every interior cell of
        the back buffer is written exactly once:

        * fluid ``x``:  ``out[i][x] = fg[i][x - c_i]``
        * solid ``x``:  ``out[i][x] = fg[opp(i)][x + c_i]`` — the
          composition of the dense stream and the full-way bounce-back
          swap, so :class:`~repro.lbm.boundaries.BounceBackNodes` must
          *not* run again afterwards.

        Ghost layers of the back buffer are left stale exactly like
        :func:`~repro.lbm.streaming.stream_pull` leaves them; the next
        ghost fill / halo exchange overwrites them.
        """
        s = self.solver
        lat = self.lattice
        fg2 = self._flat2(s.fg)
        out2 = self._flat2(s._fg_next)
        nf, ns = self.n_fluid, self.n_solid
        fl, sd = self._fl, self._sd
        for i in range(lat.Q):
            off = self._link_off[i]
            if nf:
                idx, val = self._isrc[:nf], self._vals[:nf]
                np.subtract(fl, off, out=idx)
                np.take(fg2[i], idx, out=val)
                out2[i][fl] = val
            if ns:
                idx, val = self._isrc[:ns], self._vals[:ns]
                np.add(sd, off, out=idx)
                np.take(fg2[self._opp[i]], idx, out=val)
                out2[i][sd] = val
        s.fg, s._fg_next = s._fg_next, s.fg


def run_sparse_equivalence_check(shape=(24, 20, 4), steps: int = 3,
                                 seed: int = 0, backends=("serial",
                                                          "processes"),
                                 ) -> dict:
    """Sparse-kernel gate used by ``python -m repro check-sparse``.

    Voxelizes the procedural city into a solid-heavy mask, then
    requires bit-identical distributions between

    * the dense phase-split reference and a ``kernel="sparse"`` solver
      (periodic, and non-periodic with inlet/outflow and a body force),
    * the reference and a 2x2x1 cluster whose ranks *mix* fused-dense
      and sparse kernels (threshold sits between the per-rank solid
      fractions), under each requested execution backend.

    Returns a report dict with the occupancy, per-backend per-rank
    kernel choices and local occupancies (the timing-summary rows).
    Raises ``AssertionError`` on any bit divergence.
    """
    from repro.core.cluster_lbm import ClusterConfig, CPUClusterLBM
    from repro.lbm.solver import LBMSolver
    from repro.urban.city import times_square_like
    from repro.urban.voxelize import voxelize_city

    city = times_square_like(seed=7)
    solid = voxelize_city(city, shape, resolution_m=24.0, ground_layers=2)
    occupancy = float(solid.mean())

    def _init(solver):
        u0 = (0.02 * rng_state.standard_normal((3,) + shape)).astype(np.float32)
        u0[:, solid] = 0
        solver.initialize(rho=np.ones(shape, np.float32), u=u0)

    # -- single-domain equivalence, periodic and bounded ----------------
    for kwargs in (
        {"periodic": True},
        {"periodic": True, "force": (1e-5, 0.0, 0.0)},
        {"periodic": False, "force": (1e-5, 0.0, 0.0)},
    ):
        rng_state = np.random.default_rng(seed)
        ref = LBMSolver(shape, tau=0.7, solid=solid, kernel="split", **kwargs)
        _init(ref)
        rng_state = np.random.default_rng(seed)
        sp = LBMSolver(shape, tau=0.7, solid=solid, kernel="sparse", **kwargs)
        _init(sp)
        ref.step(steps)
        sp.step(steps)
        if not np.array_equal(ref.f, sp.f):
            raise AssertionError(
                f"sparse kernel diverged from the dense reference ({kwargs})")

    # -- mixed-rank cluster equivalence under each backend --------------
    sub = tuple(x // a for x, a in zip(shape, (2, 2, 1)))
    rng_state = np.random.default_rng(seed)
    ref = LBMSolver(shape, tau=0.7, solid=solid, kernel="split")
    _init(ref)
    f0 = ref.f.copy()
    ref.step(steps)
    # A threshold between the per-rank occupancies forces a mix.
    fracs = sorted(float(solid[i * sub[0]:(i + 1) * sub[0],
                               j * sub[1]:(j + 1) * sub[1]].mean())
                   for i in range(2) for j in range(2))
    threshold = (fracs[0] + fracs[-1]) / 2.0
    reports: dict[str, list[dict]] = {}
    for backend in backends:
        cfg = ClusterConfig(sub_shape=sub, arrangement=(2, 2, 1), tau=0.7,
                            solid=solid, backend=backend,
                            autotune="heuristic",
                            sparse_threshold=threshold)
        with CPUClusterLBM(cfg) as cluster:
            cluster.load_global_distributions(f0)
            cluster.step(steps)
            got = cluster.gather_distributions().copy()
            reports[backend] = cluster.kernel_report()
        if not np.array_equal(got, ref.f):
            raise AssertionError(
                f"mixed-kernel cluster (backend={backend}) diverged from "
                f"the reference")
        kinds = {row["kernel"] for row in reports[backend]}
        # The cluster's dense hot path is the phase-split collide (the
        # fused single-pass kernel cannot interleave the halo
        # exchange), so a mix means sparse + split ranks.
        if not {"sparse", "split"} <= kinds:
            raise AssertionError(
                f"expected mixed per-rank kernels under backend={backend}, "
                f"got {sorted(kinds)}")
    return {"shape": shape, "steps": steps, "occupancy": occupancy,
            "threshold": threshold, "backends": reports}
