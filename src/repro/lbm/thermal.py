"""Hybrid thermal LBM (HTLBM).

Sec 4.1: "The hybrid thermal LBM abandons the BGK collision model for
the more stable Multiple Relaxation Time (MRT) collision model.
Temperature, modeled with a standard diffusion-advection equation
implemented as a finite difference equation is coupled to the MRT LBM
via an energy term."  (Lallemand & Luo 2003.)

We therefore combine:

* an MRT D3Q19 flow step (:class:`repro.lbm.mrt.MRTCollision`);
* an explicit finite-difference advection-diffusion step for the
  temperature field ``T``::

      T' = T - u . grad(T) + kappa laplacian(T)

  with central-difference gradients and the standard 7-point Laplacian;
* two-way coupling: temperature drives the flow through a Boussinesq
  buoyancy force ``F = g beta (T - T0) e_z`` injected after collision,
  and feeds the MRT energy moment via the ``energy_source`` hook
  (strength ``energy_coupling``).

The implementation note in the paper — "the implementation of the
HTLBM is similar to the earlier LBM requiring only two additional
matrix multiplications" — corresponds to the M / M^-1 transforms of
the MRT step, which is exactly how :class:`MRTCollision` is built.
"""

from __future__ import annotations

import numpy as np

from repro.lbm.boundaries import Boundary
from repro.lbm.lattice import D3Q19, Lattice
from repro.lbm.mrt import MRTCollision
from repro.lbm.solver import LBMSolver


def _central_gradient(T: np.ndarray, axis: int) -> np.ndarray:
    """Second-order central difference with zero-gradient ends."""
    g = np.empty_like(T)
    lo = [slice(None)] * T.ndim
    hi = [slice(None)] * T.ndim
    mid = [slice(None)] * T.ndim
    lo[axis], hi[axis], mid[axis] = slice(0, -2), slice(2, None), slice(1, -1)
    g[tuple(mid)] = 0.5 * (T[tuple(hi)] - T[tuple(lo)])
    first = [slice(None)] * T.ndim
    second = [slice(None)] * T.ndim
    first[axis], second[axis] = 0, 1
    g[tuple(first)] = T[tuple(second)] - T[tuple(first)]
    first[axis], second[axis] = -1, -2
    g[tuple(first)] = T[tuple(first)] - T[tuple(second)]
    return g


def _laplacian(T: np.ndarray) -> np.ndarray:
    """7-point Laplacian with zero-gradient (insulating) boundaries."""
    out = np.zeros_like(T)
    for axis in range(T.ndim):
        padded = np.concatenate(
            [np.take(T, [0], axis=axis), T, np.take(T, [-1], axis=axis)], axis=axis)
        lo = [slice(None)] * T.ndim
        hi = [slice(None)] * T.ndim
        lo[axis], hi[axis] = slice(0, -2), slice(2, None)
        out += padded[tuple(lo)] + padded[tuple(hi)] - 2.0 * T
    return out


class HybridThermalLBM:
    """MRT flow solver coupled to a finite-difference temperature field.

    Parameters
    ----------
    shape:
        Grid shape ``(nx, ny, nz)``.
    tau:
        MRT relaxation time (sets viscosity).
    kappa:
        Thermal diffusivity (lattice units); explicit stability requires
        ``kappa < 1/6`` in 3D.
    g_beta:
        Buoyancy strength ``g * beta`` (gravity along -z, so positive
        temperature anomaly pushes +z).
    t0:
        Reference temperature.
    energy_coupling:
        Strength of the energy-moment feedback term (0 disables).
    boundaries, solid:
        Forwarded to the underlying :class:`LBMSolver`.
    """

    def __init__(self, shape, tau: float, kappa: float = 0.05,
                 g_beta: float = 1e-4, t0: float = 0.0,
                 energy_coupling: float = 0.0,
                 boundaries=(), solid=None, lattice: Lattice = D3Q19,
                 dtype=np.float32) -> None:
        if not (0.0 < kappa < 1.0 / 6.0):
            raise ValueError(f"kappa must be in (0, 1/6) for stability, got {kappa}")
        self.kappa = float(kappa)
        self.g_beta = float(g_beta)
        self.t0 = float(t0)
        self.energy_coupling = float(energy_coupling)
        self.T = np.full(shape, t0, dtype=np.float64)
        self._energy_src = np.zeros(shape, dtype=np.float64)

        def energy_source(grid):
            return self._energy_src

        collision = MRTCollision(
            lattice, tau,
            energy_source=energy_source if energy_coupling != 0.0 else None)
        self.flow = LBMSolver(shape, tau, lattice=lattice, collision=collision,
                              boundaries=boundaries, solid=solid, dtype=dtype)
        self.lattice = lattice

    @property
    def shape(self) -> tuple[int, ...]:
        return self.flow.shape

    def set_temperature(self, T: np.ndarray) -> None:
        """Overwrite the temperature field."""
        self.T[...] = np.broadcast_to(T, self.T.shape)

    def _buoyancy(self) -> None:
        """Inject Boussinesq force: dj = g_beta (T - T0) e_z per step."""
        lat = self.lattice
        fz = (self.g_beta * (self.T - self.t0)).astype(self.flow.dtype)
        fi = self.flow.f
        w = lat.w.astype(self.flow.dtype)
        cz = lat.c[:, 2].astype(self.flow.dtype)
        for i in range(lat.Q):
            if cz[i] != 0:
                fi[i] += (3.0 * w[i] * cz[i]) * fz

    def _temperature_step(self, u: np.ndarray) -> None:
        adv = np.zeros_like(self.T)
        for a in range(self.T.ndim):
            adv += u[a].astype(np.float64) * _central_gradient(self.T, a)
        self.T += -adv + self.kappa * _laplacian(self.T)

    def step(self, n: int = 1) -> None:
        """Advance flow + temperature ``n`` coupled steps."""
        for _ in range(n):
            if self.energy_coupling != 0.0:
                self._energy_src[...] = self.energy_coupling * (self.T - self.t0)
            _, u = self.flow.macroscopic()
            self._temperature_step(u)
            self.flow.step(1)
            self._buoyancy()

    def macroscopic(self):
        """(rho, u, T)."""
        rho, u = self.flow.macroscopic()
        return rho, u, self.T
