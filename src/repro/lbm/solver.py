"""Single-domain reference LBM solver.

This is the golden model: the GPU texture implementation (``repro.gpu``)
and the distributed GPU-cluster implementation (``repro.core``) are both
validated against it.  The step pipeline mirrors the paper's rendering
passes (Sec 4.2): collision, streaming, boundary conditions.

The solver keeps its distributions in a ghost-padded array so the same
streaming kernel serves both the periodic single-domain case (ghosts
filled by wrap-around) and the decomposed case (ghosts filled from the
network by the cluster driver).
"""

from __future__ import annotations

import numpy as np

from repro.lbm.boundaries import Boundary, BounceBackNodes
from repro.lbm.collision import BGKCollision
from repro.lbm.equilibrium import equilibrium, equilibrium_site
from repro.lbm.fused import FusedStepKernel
from repro.lbm.lattice import D3Q19, Lattice
from repro.lbm.macroscopic import macroscopic
from repro.lbm.mrt import MRTCollision
from repro.lbm.streaming import (fill_ghosts_periodic, interior,
                                 pull_slice_table, shell_partition,
                                 stream_pull)
from repro.perf.counters import KernelCounters


class LBMSolver:
    """Reference lattice Boltzmann solver on a single domain.

    Parameters
    ----------
    shape:
        Grid shape, e.g. ``(nx, ny, nz)``.
    tau:
        BGK/MRT relaxation time (> 0.5).
    lattice:
        Velocity set; defaults to D3Q19.
    collision:
        ``"bgk"`` or ``"mrt"`` (MRT requires D3Q19), or a prebuilt
        collision operator.
    solid:
        Optional boolean obstacle mask (True = solid); handled with
        full-way bounce-back.
    boundaries:
        Extra :class:`~repro.lbm.boundaries.Boundary` handlers, applied
        post-stream in order.
    force:
        Optional constant body force (BGK only).
    periodic:
        If True (default) ghost cells wrap around; otherwise they are
        zero-gradient copies of the edge layer (boundary handlers are
        then expected to impose the real condition).
    dtype:
        ``numpy.float32`` by default, matching the GPU's single
        precision.
    fused:
        If True (default) ``step`` runs the single-pass fused
        collide–stream kernel (:class:`~repro.lbm.fused.FusedStepKernel`)
        whenever the configuration is eligible (BGK collision, no
        ``pre_stream`` boundary snapshots); ineligible configurations
        and ``fused=False`` take the phase-split path.  Both paths are
        bit-identical.
    """

    def __init__(self, shape, tau: float, lattice: Lattice = D3Q19,
                 collision: str | object = "bgk", solid=None, boundaries=(),
                 force=None, periodic: bool = True, dtype=np.float32,
                 fused: bool = True) -> None:
        self.lattice = lattice
        self.shape = tuple(int(s) for s in shape)
        if len(self.shape) != lattice.D:
            raise ValueError(f"shape {shape} does not match lattice dim {lattice.D}")
        self.dtype = np.dtype(dtype)
        self.periodic = bool(periodic)
        if isinstance(collision, str):
            if collision == "bgk":
                self.collision = BGKCollision(lattice, tau, force=force)
            elif collision == "mrt":
                if force is not None:
                    raise ValueError("force is supported with BGK collision only")
                self.collision = MRTCollision(lattice, tau)
            else:
                raise ValueError(f"unknown collision {collision!r}")
        else:
            self.collision = collision
        self.solid = (np.zeros(self.shape, dtype=bool) if solid is None
                      else np.asarray(solid, dtype=bool))
        if self.solid.shape != self.shape:
            raise ValueError("solid mask shape mismatch")
        self.fluid = ~self.solid
        self.boundaries = list(boundaries)
        self._bounce = BounceBackNodes(lattice, self.solid)

        padded = (lattice.Q,) + tuple(s + 2 for s in self.shape)
        self.fg = np.zeros(padded, dtype=self.dtype)
        self._fg_next = np.zeros(padded, dtype=self.dtype)
        self._pull_slices = pull_slice_table(lattice, padded[1:])
        self.fused = bool(fused)
        self._fused_kernel: FusedStepKernel | None = None
        self._shell_parts: tuple[list, tuple] | None = None
        self.counters = KernelCounters()
        if isinstance(self.collision, BGKCollision):
            self.collision.counters = self.counters
        self.time_step = 0
        self.initialize()

    # ------------------------------------------------------------------
    @property
    def f(self) -> np.ndarray:
        """Interior (unpadded) view of the distributions."""
        return self.fg[(slice(None),) + interior(self.lattice.D)]

    def initialize(self, rho: float | np.ndarray = 1.0, u=None) -> None:
        """Set distributions to equilibrium at ``(rho, u)``."""
        lat = self.lattice
        if np.isscalar(rho) and (u is None or np.asarray(u).ndim == 1):
            uvec = np.zeros(lat.D) if u is None else np.asarray(u, dtype=np.float64)
            feq = equilibrium_site(lat, float(rho), uvec).astype(self.dtype)
            self.f[...] = feq.reshape((lat.Q,) + (1,) * lat.D)
        else:
            rho_arr = np.broadcast_to(np.asarray(rho, dtype=self.dtype), self.shape).copy()
            u_arr = (np.zeros((lat.D,) + self.shape, dtype=self.dtype) if u is None
                     else np.asarray(u, dtype=self.dtype))
            self.f[...] = equilibrium(lat, rho_arr, u_arr)
        self.time_step = 0

    # -- step phases (reused by the distributed driver) ----------------
    def collide(self) -> None:
        """Collision on interior fluid cells (in place)."""
        fi = self.f
        self.collision(fi, mask=self.fluid)

    # -- split collide (boundary shell first, then inner core) ---------
    def _split_parts(self) -> tuple[list, tuple]:
        if self._shell_parts is None:
            self._shell_parts = shell_partition(self.shape, depth=1)
        return self._shell_parts

    def _collide_region(self, region: tuple[slice, ...]) -> None:
        # The vectorized operator is the fast path here: with no
        # streaming to fuse, a region collide is pure collision, and
        # one all-links equilibrium evaluation beats the fused kernel's
        # per-link loop (which only pays off when each f_i is streamed
        # in the same sweep).  Collision is pointwise, so per-region
        # operator calls are bit-identical to one full collide.
        view = self.f[(slice(None),) + region]
        if view.size == 0:
            return
        self.collision(view, mask=self.fluid[region])

    def collide_boundary(self) -> None:
        """Collide only the depth-1 boundary shell of the domain.

        Together with :meth:`collide_inner` this is bit-identical to
        :meth:`collide` — collision is pointwise, so visiting the cells
        as disjoint slabs preserves every per-site operation.  The
        cluster drivers run this first so border layers are ready for
        the halo exchange while the inner core is still colliding
        (the paper's Sec-4.4 communication/computation overlap).
        """
        for sl in self._split_parts()[0]:
            self._collide_region(sl)

    def collide_inner(self) -> None:
        """Collide the inner core (everything the shell excludes)."""
        self._collide_region(self._split_parts()[1])

    def collide_split(self) -> None:
        """Boundary-shell pass then inner-core pass; ≡ :meth:`collide`."""
        self.collide_boundary()
        self.collide_inner()

    def fill_ghosts(self) -> None:
        """Populate the ghost shell (periodic wrap or zero-gradient)."""
        if self.periodic:
            fill_ghosts_periodic(self.fg)
        else:
            # Zero-gradient: copy the edge layer outward so nothing
            # spurious streams in; inlets/outlets overwrite afterwards.
            for ax in range(1, self.fg.ndim):
                n = self.fg.shape[ax]
                lo = [slice(None)] * self.fg.ndim
                src = [slice(None)] * self.fg.ndim
                lo[ax], src[ax] = 0, 1
                self.fg[tuple(lo)] = self.fg[tuple(src)]
                lo[ax], src[ax] = n - 1, n - 2
                self.fg[tuple(lo)] = self.fg[tuple(src)]

    def stream(self) -> None:
        """Pull-stream into the double buffer and swap."""
        stream_pull(self.lattice, self.fg, out=self._fg_next,
                    slices=self._pull_slices)
        self.fg, self._fg_next = self._fg_next, self.fg

    def post_stream(self) -> None:
        """Bounce-back on solids, then user boundary handlers."""
        if self.solid.any():
            self._bounce.apply(self.fg)
        for b in self.boundaries:
            b.apply(self.fg)

    # ------------------------------------------------------------------
    def _fused_kernel_for_step(self) -> FusedStepKernel | None:
        """The fused kernel, or None if the phase-split path must run.

        Eligibility is re-checked every step because boundary handlers
        may be appended after construction; the kernel itself is built
        once and reused (its workspace is the whole point).
        """
        if not self.fused or not FusedStepKernel.eligible(self):
            return None
        if self._fused_kernel is None:
            self._fused_kernel = FusedStepKernel(self)
        return self._fused_kernel

    def _step_phase_split(self) -> None:
        """One step through the classic collide/ghosts/stream phases."""
        rec = self.counters
        if rec is not None and rec.enabled:
            with rec.phase("collide"):
                self.collide()
                for b in self.boundaries:
                    b.pre_stream(self.fg)
            with rec.phase("ghosts"):
                self.fill_ghosts()
            with rec.phase("stream"):
                self.stream()
            with rec.phase("post_stream"):
                self.post_stream()
        else:
            self.collide()
            for b in self.boundaries:
                b.pre_stream(self.fg)
            self.fill_ghosts()
            self.stream()
            self.post_stream()

    def step(self, n: int = 1) -> None:
        """Advance ``n`` LBM time steps."""
        for _ in range(n):
            kern = self._fused_kernel_for_step()
            if kern is not None:
                kern.step_once()
            else:
                self._step_phase_split()
            self.time_step += 1

    # -- observables ----------------------------------------------------
    def macroscopic(self) -> tuple[np.ndarray, np.ndarray]:
        """Density and velocity of the interior."""
        return macroscopic(self.lattice, self.f)

    def total_mass(self) -> float:
        """Total mass over fluid cells (conserved by collision)."""
        return float(self.f[:, self.fluid].sum(dtype=np.float64))

    def velocity(self) -> np.ndarray:
        """Velocity field, shape ``(D,) + shape``."""
        return self.macroscopic()[1]

    def density(self) -> np.ndarray:
        """Density field, shape ``shape``."""
        return self.macroscopic()[0]
