"""Single-domain reference LBM solver.

This is the golden model: the GPU texture implementation (``repro.gpu``)
and the distributed GPU-cluster implementation (``repro.core``) are both
validated against it.  The step pipeline mirrors the paper's rendering
passes (Sec 4.2): collision, streaming, boundary conditions.

The solver keeps its distributions in a ghost-padded array so the same
streaming kernel serves both the periodic single-domain case (ghosts
filled by wrap-around) and the decomposed case (ghosts filled from the
network by the cluster driver).
"""

from __future__ import annotations

import time

import numpy as np

from repro.lbm.boundaries import Boundary, BounceBackNodes
from repro.lbm.collision import BGKCollision
from repro.lbm.equilibrium import equilibrium, equilibrium_site
from repro.lbm.fused import FusedStepKernel
from repro.lbm.lattice import D3Q19, Lattice
from repro.lbm.macroscopic import macroscopic
from repro.lbm.mrt import MRTCollision
from repro.lbm.streaming import (fill_ghosts_periodic,
                                 fill_ghosts_zero_gradient, interior,
                                 pull_slice_table, shell_partition,
                                 stream_pull)
from repro.perf.counters import KernelCounters
from repro.perf.telemetry import NULL_REGISTRY
from repro.perf.trace import NULL_TRACER


class LBMSolver:
    """Reference lattice Boltzmann solver on a single domain.

    Parameters
    ----------
    shape:
        Grid shape, e.g. ``(nx, ny, nz)``.
    tau:
        BGK/MRT relaxation time (> 0.5).
    lattice:
        Velocity set; defaults to D3Q19.
    collision:
        ``"bgk"`` or ``"mrt"`` (MRT requires D3Q19), or a prebuilt
        collision operator.
    solid:
        Optional boolean obstacle mask (True = solid); handled with
        full-way bounce-back.
    boundaries:
        Extra :class:`~repro.lbm.boundaries.Boundary` handlers, applied
        post-stream in order.
    force:
        Optional constant body force (BGK only).
    periodic:
        If True (default) ghost cells wrap around; otherwise they are
        zero-gradient copies of the edge layer (boundary handlers are
        then expected to impose the real condition).
    dtype:
        ``numpy.float32`` by default, matching the GPU's single
        precision.
    fused:
        If True (default) ``step`` runs the single-pass fused
        collide–stream kernel (:class:`~repro.lbm.fused.FusedStepKernel`)
        whenever the configuration is eligible (BGK collision, no
        ``pre_stream`` boundary snapshots); ineligible configurations
        and ``fused=False`` take the phase-split path.  Both paths are
        bit-identical.
    kernel:
        Hot-path selection: ``"auto"`` (default) picks the sparse
        fluid-compacted kernel (:class:`~repro.lbm.sparse.SparseStepKernel`)
        when the solid fraction reaches ``sparse_threshold`` and the
        fused dense kernel otherwise (phase-split when ``fused=False``
        or the configuration is ineligible); ``"fused"``, ``"sparse"``,
        ``"aa"`` (swap-free two-phase AA pattern,
        :class:`~repro.lbm.aa.AAStepKernel`) and ``"split"`` force one
        path (ineligible configurations still fall back to
        ``"split"``).  All paths are bit-identical (AA after every pair
        of steps on the raw distributions, every step on macroscopic
        fields and the reconstructed ``f`` view).
    sparse_threshold:
        Solid fraction at or above which ``kernel="auto"`` selects the
        sparse kernel (default 0.5).
    layout:
        Physical memory layout of the distribution array: ``"soa"``
        (default, structure-of-arrays — the Q axis slowest, each
        population plane contiguous), ``"aos"`` (array-of-structures —
        the Q axis fastest-varying in memory, exposed through a
        transposed view so all indexing is unchanged), or ``"auto"``
        (start SoA and let the measured autotuner probe both layouts
        for the layout-sensitive kernels — see
        :mod:`repro.lbm.autotune`; with ``autotune="heuristic"`` it
        stays SoA).  All layouts are bit-identical; only the stride
        pattern, and hence throughput, differs (Calore et al.,
        arXiv:1703.00185).  The sparse kernel requires SoA.
    autotune:
        How ``kernel="auto"`` decides: ``"heuristic"`` (default) keeps
        the solid-fraction threshold rule above; ``"measured"``
        micro-benchmarks the eligible candidate kernels on (a crop of)
        this solver's actual domain at first step and picks the fastest
        (see :mod:`repro.lbm.autotune`), caching the decision per
        (shape, solid-fraction bucket, candidate set).  The selection
        reason and measured rates are exposed as ``kernel_reason`` /
        ``kernel_rates``.
    """

    def __init__(self, shape, tau: float, lattice: Lattice = D3Q19,
                 collision: str | object = "bgk", solid=None, boundaries=(),
                 force=None, periodic: bool = True, dtype=np.float32,
                 fused: bool = True, kernel: str = "auto",
                 sparse_threshold: float = 0.5,
                 autotune: str = "heuristic", layout: str = "soa") -> None:
        self.lattice = lattice
        self.shape = tuple(int(s) for s in shape)
        if len(self.shape) != lattice.D:
            raise ValueError(f"shape {shape} does not match lattice dim {lattice.D}")
        self.dtype = np.dtype(dtype)
        self.periodic = bool(periodic)
        if isinstance(collision, str):
            if collision == "bgk":
                self.collision = BGKCollision(lattice, tau, force=force)
            elif collision == "mrt":
                if force is not None:
                    raise ValueError("force is supported with BGK collision only")
                self.collision = MRTCollision(lattice, tau)
            else:
                raise ValueError(f"unknown collision {collision!r}")
        else:
            self.collision = collision
        self.solid = (np.zeros(self.shape, dtype=bool) if solid is None
                      else np.asarray(solid, dtype=bool))
        if self.solid.shape != self.shape:
            raise ValueError("solid mask shape mismatch")
        self.fluid = ~self.solid
        self.boundaries = list(boundaries)
        self._bounce = BounceBackNodes(lattice, self.solid)

        if layout not in ("soa", "aos", "auto"):
            raise ValueError(f"layout must be 'soa', 'aos' or 'auto', "
                             f"got {layout!r}")
        #: The configured layout request ("auto" defers to the
        #: measured autotuner); ``self.layout`` below is always the
        #: concrete layout the array currently has.
        self.layout_requested = layout
        self.layout = "soa" if layout == "auto" else layout
        padded = (lattice.Q,) + tuple(s + 2 for s in self.shape)
        self.fg = self._alloc_fg(self.layout)
        #: Spare streaming buffer, allocated on first use (see the
        #: ``_fg_next`` property) so the swap-free AA kernel keeps a
        #: single-array distribution working set.
        self._fg_next_buf: np.ndarray | None = None
        self._pull_slices = pull_slice_table(lattice, padded[1:])
        self.fused = bool(fused)
        if kernel not in ("auto", "fused", "sparse", "split", "aa"):
            raise ValueError(f"kernel must be 'auto', 'fused', 'sparse', "
                             f"'split' or 'aa', got {kernel!r}")
        self.kernel = kernel
        if autotune not in ("heuristic", "measured"):
            raise ValueError(f"autotune must be 'heuristic' or 'measured', "
                             f"got {autotune!r}")
        self.autotune = autotune
        self.sparse_threshold = float(sparse_threshold)
        self.solid_fraction = float(self.solid.mean()) if self.solid.size else 0.0
        #: Which hot path actually ran ("fused" | "sparse" | "split");
        #: None until the first step.
        self.kernel_used: str | None = None
        self._fused_kernel: FusedStepKernel | None = None
        self._sparse_kernel = None
        self._aa_kernel = None
        #: Why the current kernel was selected — "forced ...",
        #: "heuristic: ..." or "measured: ..." — and, for measured
        #: autotuning, the probe's MLUPS per candidate kernel.
        self.kernel_reason: str | None = None
        self.kernel_rates: dict[str, float] | None = None
        self._reason_kind: str | None = None
        self._autotune_choice = None
        #: Set True by the cluster drivers: the solver is stepped
        #: through its split phase entry points, which removes the
        #: whole-step-only kernels (fused, aa) from the measured
        #: autotune candidate set.
        self.phase_driven = False
        #: Set True by a cluster driver that takes over the AA halo
        #: protocol (forward exchange after even phases, reverse ghost
        #: fold-back after odd phases).
        self.aa_halo_managed = False
        #: Set by the sparse stream (bounce-back is folded into its
        #: gather table) so post_stream skips the dense swap.
        self._bounce_folded = False
        #: True while the single AA array sits in the rotated mid-pair
        #: layout (after an even phase): ``post_stream`` then imposes
        #: boundary handlers through the rotated write rule
        #: (:mod:`repro.lbm.esoteric`) instead of applying them
        #: canonically.
        self._aa_rotated = False
        self._shell_parts: tuple[list, tuple] | None = None
        self.counters = KernelCounters()
        #: Span tracer (see :mod:`repro.perf.trace`); the shared
        #: disabled singleton until a driver or caller attaches a live
        #: one, so un-traced steps pay only the no-op span calls.
        self.tracer = NULL_TRACER
        #: Live metrics registry (see :mod:`repro.perf.telemetry`);
        #: the shared disabled singleton by default — drivers attach a
        #: per-rank view when telemetry is enabled, and the autotuner
        #: records its probe decisions here.
        self.metrics = NULL_REGISTRY
        if isinstance(self.collision, BGKCollision):
            self.collision.counters = self.counters
        self.time_step = 0
        self.initialize()

    # ------------------------------------------------------------------
    @property
    def f(self) -> np.ndarray:
        """Interior (unpadded) distributions in canonical layout.

        A live view of the padded array, except at odd parity under the
        AA kernel, where the single array holds the rotated mid-pair
        layout: there a read-only canonical reconstruction is returned
        (bit-identical to the reference solver's state, see
        :meth:`repro.lbm.aa.AAStepKernel.reconstruct`).
        """
        if self._aa_kernel is not None and (self.time_step & 1):
            return self._aa_kernel.reconstruct()
        return self.fg[(slice(None),) + interior(self.lattice.D)]

    def _alloc_fg(self, layout: str) -> np.ndarray:
        """Allocate a zeroed padded distribution array in ``layout``.

        Both layouts expose the identical logical ``(Q,) + padded``
        indexing; AoS allocates with the Q axis physically
        fastest-varying and returns a transposed view, so every kernel
        and exchange path runs unchanged on either.
        """
        lat = self.lattice
        padded = tuple(s + 2 for s in self.shape)
        if layout == "aos":
            base = np.zeros(padded + (lat.Q,), dtype=self.dtype)
            return np.moveaxis(base, -1, 0)
        return np.zeros((lat.Q,) + padded, dtype=self.dtype)

    def _set_layout(self, layout: str) -> None:
        """Switch the distribution array's physical layout in place.

        Contents are preserved bit for bit; the spare buffer and the
        kernel instances are dropped so nothing holds views or stride
        assumptions of the old array.
        """
        if layout == self.layout:
            return
        old = self.fg
        self.fg = self._alloc_fg(layout)
        self.fg[...] = old
        self.layout = layout
        self._fg_next_buf = None
        self._fused_kernel = None
        self._sparse_kernel = None
        self._aa_kernel = None

    @property
    def _fg_next(self) -> np.ndarray:
        """Spare streaming buffer, allocated lazily on first access."""
        buf = self._fg_next_buf
        if buf is None:
            buf = self._fg_next_buf = np.zeros_like(self.fg)
        return buf

    @_fg_next.setter
    def _fg_next(self, value: np.ndarray) -> None:
        self._fg_next_buf = value

    def initialize(self, rho: float | np.ndarray = 1.0, u=None) -> None:
        """Set distributions to equilibrium at ``(rho, u)``."""
        # Reset the step counter first: under the AA kernel at odd
        # parity ``self.f`` returns a read-only reconstruction, and a
        # reset solver starts canonical at step 0 by definition.
        self.time_step = 0
        self._aa_rotated = False
        lat = self.lattice
        if np.isscalar(rho) and (u is None or np.asarray(u).ndim == 1):
            uvec = np.zeros(lat.D) if u is None else np.asarray(u, dtype=np.float64)
            feq = equilibrium_site(lat, float(rho), uvec).astype(self.dtype)
            self.f[...] = feq.reshape((lat.Q,) + (1,) * lat.D)
        else:
            rho_arr = np.broadcast_to(np.asarray(rho, dtype=self.dtype), self.shape).copy()
            u_arr = (np.zeros((lat.D,) + self.shape, dtype=self.dtype) if u is None
                     else np.asarray(u, dtype=self.dtype))
            self.f[...] = equilibrium(lat, rho_arr, u_arr)

    # -- kernel selection ----------------------------------------------
    def _note_selection(self, kind: str, reason_parts) -> str:
        """Record ``kernel_reason`` once per selection change."""
        if kind != self._reason_kind:
            self._reason_kind = kind
            self.kernel_reason = "".join(reason_parts)
        return kind

    def _select_kernel(self) -> str:
        """Resolve which hot path this step should run.

        Re-checked every step (boundary handlers may be appended after
        construction).  ``"auto"`` honours the legacy ``fused`` switch
        — ``fused=False`` keeps the historic phase-split behaviour.
        With ``autotune="heuristic"`` it picks sparse exactly when the
        local solid fraction reaches ``sparse_threshold`` (the per-rank
        selection rule the cluster drivers historically relied on);
        with ``autotune="measured"`` it defers to the cached measured
        probe (:mod:`repro.lbm.autotune`), falling back to the
        heuristic if the configuration drifted since the probe.
        """
        from repro.lbm.aa import AAStepKernel
        from repro.lbm.sparse import SparseStepKernel
        if self.kernel == "split":
            return self._note_selection("split", ("forced kernel='split'",))
        if self.kernel in ("sparse", "fused", "aa"):
            kern_cls = {"sparse": SparseStepKernel, "fused": FusedStepKernel,
                        "aa": AAStepKernel}[self.kernel]
            if kern_cls.eligible(self):
                if (self.layout_requested == "auto"
                        and self.autotune == "measured"):
                    from repro.lbm import autotune
                    if (self.kernel in autotune.LAYOUT_KERNELS
                            and self._autotune_choice is None):
                        # Forced kernel, free layout: probe just this
                        # kernel's layout variants and switch if AoS
                        # measured faster on this sub-domain.
                        choice = autotune.choose_layout(self, self.kernel)
                        self._autotune_choice = choice
                        self.kernel_rates = choice.rates
                        self._set_layout(choice.layout)
                        return self._note_selection(
                            self.kernel, (choice.reason,))
                return self._note_selection(
                    self.kernel, ("forced kernel=", repr(self.kernel)))
            return self._note_selection(
                "split", ("forced kernel=", repr(self.kernel),
                          " ineligible; fell back to split"))
        if self.autotune == "measured":
            from repro.lbm import autotune
            choice = self._autotune_choice
            if choice is None:
                choice = self._autotune_choice = autotune.choose_kernel(self)
                self.kernel_rates = choice.rates
                self._set_layout(choice.layout)
            if autotune.still_eligible(self, choice.kernel):
                return self._note_selection(choice.kernel, (choice.reason,))
            # Configuration drifted since the probe (e.g. a boundary
            # handler was appended): fall through to the heuristic.
        if not self.fused or not FusedStepKernel.eligible(self):
            return self._note_selection(
                "split", ("heuristic: fused kernel disabled or ineligible",))
        if self.solid_fraction >= self.sparse_threshold:
            return self._note_selection(
                "sparse", ("heuristic: solid_fraction ",
                           format(self.solid_fraction, ".3f"),
                           " >= sparse_threshold ",
                           format(self.sparse_threshold, "g")))
        return self._note_selection(
            "fused", ("heuristic: solid_fraction ",
                      format(self.solid_fraction, ".3f"),
                      " < sparse_threshold ",
                      format(self.sparse_threshold, "g")))

    def _sparse_kernel_for_phase(self):
        """The sparse kernel when selected, else None (dense phases run).

        Used by the per-phase entry points so the cluster drivers get
        per-rank sparse selection without any protocol change: the
        exchange still sees the same padded ``fg``.
        """
        if self._select_kernel() != "sparse":
            return None
        if self._sparse_kernel is None:
            from repro.lbm.sparse import SparseStepKernel
            self._sparse_kernel = SparseStepKernel(self)
        return self._sparse_kernel

    def _aa_kernel_for_phase(self):
        """The AA kernel when selected, else None (classic phases run).

        Like the sparse hook, this lets the cluster drivers keep their
        collide/exchange/finish phase protocol: under AA the collide
        phases run the parity-appropriate in-place AA phase and the
        stream phase is a no-op (streaming happened in place).
        """
        if self._select_kernel() != "aa":
            return None
        if self._aa_kernel is None:
            from repro.lbm.aa import AAStepKernel
            self._aa_kernel = AAStepKernel(self)
        return self._aa_kernel

    def _aa_even(self) -> bool:
        """True when the step being computed runs the AA even phase."""
        return (self.time_step & 1) == 0

    # -- step phases (reused by the distributed driver) ----------------
    def collide(self) -> None:
        """Collision on interior fluid cells (in place)."""
        akern = self._aa_kernel_for_phase()
        if akern is not None:
            self.kernel_used = "aa"
            with self.tracer.span("solver.collide", step=self.time_step,
                                  kernel="aa"):
                if self._aa_even():
                    akern.even_phase(None)
                else:
                    akern.odd_phase(None)
            return
        kern = self._sparse_kernel_for_phase()
        kind = "sparse" if kern is not None else "split"
        with self.tracer.span("solver.collide", step=self.time_step,
                              kernel=kind):
            if kern is not None:
                self.kernel_used = "sparse"
                kern.collide()
                return
            self.kernel_used = "split"
            fi = self.f
            self.collision(fi, mask=self.fluid)

    # -- split collide (boundary shell first, then inner core) ---------
    def _split_parts(self) -> tuple[list, tuple]:
        if self._shell_parts is None:
            self._shell_parts = shell_partition(self.shape, depth=1)
        return self._shell_parts

    def _collide_region(self, region: tuple[slice, ...]) -> None:
        # The vectorized operator is the fast path here: with no
        # streaming to fuse, a region collide is pure collision, and
        # one all-links equilibrium evaluation beats the fused kernel's
        # per-link loop (which only pays off when each f_i is streamed
        # in the same sweep).  Collision is pointwise, so per-region
        # operator calls are bit-identical to one full collide.
        view = self.f[(slice(None),) + region]
        if view.size == 0:
            return
        self.collision(view, mask=self.fluid[region])

    def collide_boundary(self) -> None:
        """Collide only the depth-1 boundary shell of the domain.

        Together with :meth:`collide_inner` this is bit-identical to
        :meth:`collide` — collision is pointwise, so visiting the cells
        as disjoint slabs preserves every per-site operation.  The
        cluster drivers run this first so border layers are ready for
        the halo exchange while the inner core is still colliding
        (the paper's Sec-4.4 communication/computation overlap).
        """
        akern = self._aa_kernel_for_phase()
        if akern is not None:
            # AA phases are location-owned (a region reads and writes
            # exactly the slots its own sites own), so the shell/core
            # split stays hazard-free in either parity and the comm
            # overlap works unchanged.
            self.kernel_used = "aa"
            even = self._aa_even()
            with self.tracer.span("solver.collide_boundary",
                                  step=self.time_step, kernel="aa"):
                for sl in self._split_parts()[0]:
                    if even:
                        akern.even_phase(sl)
                    else:
                        akern.odd_phase(sl)
            return
        kern = self._sparse_kernel_for_phase()
        kind = "sparse" if kern is not None else "split"
        with self.tracer.span("solver.collide_boundary",
                              step=self.time_step, kernel=kind):
            if kern is not None:
                self.kernel_used = "sparse"
                kern.collide_shell()
                return
            self.kernel_used = "split"
            for sl in self._split_parts()[0]:
                self._collide_region(sl)

    def collide_inner(self) -> None:
        """Collide the inner core (everything the shell excludes)."""
        akern = self._aa_kernel_for_phase()
        if akern is not None:
            even = self._aa_even()
            with self.tracer.span("solver.collide_inner",
                                  step=self.time_step, kernel="aa"):
                if even:
                    akern.even_phase(self._split_parts()[1])
                else:
                    akern.odd_phase(self._split_parts()[1])
            return
        kern = self._sparse_kernel_for_phase()
        kind = "sparse" if kern is not None else "split"
        with self.tracer.span("solver.collide_inner",
                              step=self.time_step, kernel=kind):
            if kern is not None:
                kern.collide_core()
                return
            self._collide_region(self._split_parts()[1])

    def collide_split(self) -> None:
        """Boundary-shell pass then inner-core pass; ≡ :meth:`collide`."""
        self.collide_boundary()
        self.collide_inner()

    def fill_ghosts(self) -> None:
        """Populate the ghost shell (periodic wrap or zero-gradient)."""
        with self.tracer.span("solver.ghosts", step=self.time_step):
            self._fill_ghosts()

    def _fill_ghosts(self) -> None:
        if (self._aa_kernel is not None and not self._aa_even()
                and self._select_kernel() == "aa"):
            # Odd AA phase: the scatter pushed border populations into
            # the ghost shell — fold them back onto the interior
            # (wrap image when periodic, zero-gradient crossing-slot
            # fold on bounded faces) instead of filling (the forward
            # fill only serves the even phase's gather).  Cluster
            # drivers with ``aa_halo_managed`` run their reverse
            # exchange instead.
            self._aa_kernel.fold_ghosts()
            return
        if self.periodic:
            fill_ghosts_periodic(self.fg)
        else:
            # Zero-gradient: copy the edge layer outward so nothing
            # spurious streams in; inlets/outlets overwrite afterwards.
            fill_ghosts_zero_gradient(self.fg)

    def stream(self) -> None:
        """Pull-stream into the double buffer and swap.

        On the sparse path the stream visits fluid cells through the
        compact gather tables with bounce-back folded into the solid
        destinations, and flags ``post_stream`` to skip the dense swap.
        """
        rec = self.counters
        akern = self._aa_kernel_for_phase()
        if akern is not None:
            # Streaming already happened in place (reversed writes on
            # even phases, forward scatter on odd ones); the stream
            # phase only settles the bounce-back bookkeeping: after an
            # even phase the reversed write *is* the bounce, after an
            # odd phase post_stream applies the usual solid swap.
            with self.tracer.span("solver.stream", step=self.time_step,
                                  kernel="aa"):
                self.kernel_used = "aa"
                self._bounce_folded = self._aa_even()
                self._aa_rotated = self._aa_even()
            if rec is not None and rec.enabled:
                rec.add("kernel.aa", 0.0)
            return
        kern = self._sparse_kernel_for_phase()
        kind = "sparse" if kern is not None else "split"
        with self.tracer.span("solver.stream", step=self.time_step,
                              kernel=kind):
            if kern is not None:
                self.kernel_used = "sparse"
                kern.stream_bounce()
                self._bounce_folded = True
            else:
                self.kernel_used = "split"
                stream_pull(self.lattice, self.fg, out=self._fg_next,
                            slices=self._pull_slices)
                self.fg, self._fg_next = self._fg_next, self.fg
        if rec is not None and rec.enabled:
            # One marker per step recording which hot path ran, so
            # cluster counter summaries show the per-rank selection.
            rec.add(f"kernel.{self.kernel_used}", 0.0)

    def post_stream(self) -> None:
        """Bounce-back on solids, then user boundary handlers.

        While the AA array sits in its rotated mid-pair layout (after
        an even phase) the handlers are imposed through the rotated
        write rule instead — canonical application would corrupt the
        layout.  Both paths are bit-identical on the canonical state.
        """
        with self.tracer.span("solver.post_stream", step=self.time_step):
            if self._bounce_folded:
                self._bounce_folded = False
            elif self.solid.any():
                self._bounce.apply(self.fg)
            if self._aa_rotated:
                if self.boundaries:
                    self._aa_kernel.apply_boundaries_rotated()
                self._aa_rotated = False
                return
            for b in self.boundaries:
                b.apply(self.fg)

    # ------------------------------------------------------------------
    def _fused_kernel_for_step(self) -> FusedStepKernel | None:
        """The fused kernel, or None if the phase-split path must run.

        Eligibility is re-checked every step because boundary handlers
        may be appended after construction; the kernel itself is built
        once and reused (its workspace is the whole point).
        """
        if not self.fused or not FusedStepKernel.eligible(self):
            return None
        if self._fused_kernel is None:
            self._fused_kernel = FusedStepKernel(self)
        return self._fused_kernel

    def _step_phase_split(self) -> None:
        """One step through the classic collide/ghosts/stream phases."""
        rec = self.counters
        if rec is not None and rec.enabled:
            with rec.phase("collide"):
                self.collide()
                for b in self.boundaries:
                    b.pre_stream(self.fg)
            with rec.phase("ghosts"):
                self.fill_ghosts()
            with rec.phase("stream"):
                self.stream()
            with rec.phase("post_stream"):
                self.post_stream()
        else:
            self.collide()
            for b in self.boundaries:
                b.pre_stream(self.fg)
            self.fill_ghosts()
            self.stream()
            self.post_stream()

    def step(self, n: int = 1) -> None:
        """Advance ``n`` LBM time steps."""
        metrics = self.metrics
        step_t0 = time.perf_counter() if metrics.enabled else 0.0
        for _ in range(n):
            selected = self._select_kernel()
            if selected == "aa":
                akern = self._aa_kernel_for_phase()
                self.kernel_used = "aa"
                with self.tracer.span("solver.step", step=self.time_step,
                                      kernel="aa"):
                    akern.step_once()
                self.time_step += 1
                continue
            if selected == "fused":
                kern = self._fused_kernel_for_step()
            else:
                kern = None
            if kern is not None:
                self.kernel_used = "fused"
                with self.tracer.span("solver.step", step=self.time_step,
                                      kernel="fused"):
                    kern.step_once()
            else:
                self._step_phase_split()
            self.time_step += 1
        if metrics.enabled:
            dt = time.perf_counter() - step_t0
            metrics.counter("solver.steps").inc(n)
            metrics.histogram("solver.step.seconds").observe(dt / max(1, n))

    # -- observables ----------------------------------------------------
    def macroscopic(self) -> tuple[np.ndarray, np.ndarray]:
        """Density and velocity of the interior."""
        return macroscopic(self.lattice, self.f)

    def total_mass(self) -> float:
        """Total mass over fluid cells (conserved by collision)."""
        return float(self.f[:, self.fluid].sum(dtype=np.float64))

    def velocity(self) -> np.ndarray:
        """Velocity field, shape ``(D,) + shape``."""
        return self.macroscopic()[1]

    def density(self) -> np.ndarray:
        """Density field, shape ``shape``."""
        return self.macroscopic()[0]
