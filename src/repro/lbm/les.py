"""Smagorinsky large-eddy BGK collision.

The paper positions its urban simulation against HIGRAD, which does
"large eddy simulation with a small time step to resolve turbulent
eddies" (Sec 1), and emphasises resolving "small vortices" at 3.8 m
spacing.  At such resolutions and wind speeds the flow is turbulent;
the standard LBM treatment is the Smagorinsky subgrid model, which
needs *no* extra communication (it is purely local), so it drops into
the GPU-cluster framework unchanged — an extension the evaluation
implies but does not spell out.

The model: an eddy viscosity proportional to the local strain rate is
added to the molecular viscosity each step.  In LBM the strain rate is
available locally from the non-equilibrium stress tensor::

    Q = sqrt(2 sum_ab Pi^neq_ab Pi^neq_ab),
    Pi^neq_ab = sum_i c_ia c_ib (f_i - f_i^eq)

and the effective relaxation time solves a quadratic (Hou et al. 1996)::

    tau_eff = (tau0 + sqrt(tau0^2 + 18 sqrt(2) Csm^2 Q / rho)) / 2

With ``Csm = 0`` the operator reduces exactly to BGK (tested); with
``Csm > 0`` high-shear regions relax slower (higher local viscosity),
which is what stabilises under-resolved turbulent flows.
"""

from __future__ import annotations

import numpy as np

from repro.lbm.collision import BGKCollision
from repro.lbm.equilibrium import equilibrium
from repro.lbm.lattice import Lattice
from repro.lbm.macroscopic import macroscopic


class SmagorinskyBGK:
    """BGK collision with a Smagorinsky eddy-viscosity closure.

    Parameters
    ----------
    lattice:
        Velocity set.
    tau0:
        Molecular relaxation time (> 0.5).
    c_smago:
        Smagorinsky constant (0.1-0.2 typical; 0 reduces to BGK).
    force:
        Optional constant body force (same treatment as BGK).
    """

    def __init__(self, lattice: Lattice, tau0: float, c_smago: float = 0.16,
                 force=None) -> None:
        if tau0 <= 0.5:
            raise ValueError(f"tau0 must be > 0.5, got {tau0}")
        if c_smago < 0:
            raise ValueError("c_smago must be non-negative")
        self.lattice = lattice
        self.tau = float(tau0)          # molecular tau (BGK-compatible attr)
        self.c_smago = float(c_smago)
        self.force = None if force is None else np.asarray(force, np.float64)
        # Pairwise (a, b) index lists for the stress contraction.
        c = lattice.c.astype(np.float64)
        self._cc = np.einsum("qa,qb->qab", c, c)

    @property
    def viscosity(self) -> float:
        """Molecular viscosity (the eddy part is flow-dependent)."""
        return (self.tau - 0.5) / 3.0

    def effective_tau(self, f: np.ndarray, feq: np.ndarray,
                      rho: np.ndarray) -> np.ndarray:
        """Per-cell tau_eff from the non-equilibrium stress norm."""
        dtype = f.dtype
        fneq = (f - feq).astype(np.float64)
        pi = np.einsum("qab,q...->ab...", self._cc, fneq)
        q = np.sqrt(2.0 * np.einsum("ab...,ab...->...", pi, pi))
        safe_rho = np.where(rho > 0, rho, 1.0).astype(np.float64)
        tau0 = self.tau
        tau_eff = 0.5 * (tau0 + np.sqrt(
            tau0 * tau0 + 18.0 * np.sqrt(2.0) * self.c_smago ** 2 * q / safe_rho))
        return tau_eff.astype(dtype)

    def __call__(self, f: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        lat = self.lattice
        rho, u = macroscopic(lat, f)
        feq = equilibrium(lat, rho, u)
        if self.c_smago == 0.0:
            omega = f.dtype.type(1.0 / self.tau)
        else:
            omega = (1.0 / self.effective_tau(f, feq, rho)).astype(f.dtype)
        if mask is None:
            f += omega * (feq - f)
        else:
            f[:, mask] += (omega * (feq - f))[:, mask]
        if self.force is not None:
            c = lat.c.astype(f.dtype)
            w = lat.w.astype(f.dtype)
            cf = (c @ self.force.astype(f.dtype)) * (3.0 * w)
            add = cf.reshape((lat.Q,) + (1,) * (f.ndim - 1)).astype(f.dtype)
            if mask is None:
                f += add
            else:
                f[:, mask] += np.broadcast_to(add, f.shape)[:, mask]
        return f

    def eddy_viscosity(self, f: np.ndarray) -> np.ndarray:
        """Diagnostic: the per-cell subgrid viscosity added this step."""
        lat = self.lattice
        rho, u = macroscopic(lat, f)
        feq = equilibrium(lat, rho, u)
        tau_eff = self.effective_tau(f, feq, rho)
        return (tau_eff - self.tau) / 3.0
