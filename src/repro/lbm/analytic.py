"""Analytic reference solutions for LBM validation.

The paper claims second-order accuracy (Sec 4.1); these closed-form
flows let the tests verify that claim quantitatively.
"""

from __future__ import annotations

import numpy as np


def poiseuille_profile(n: int, force: float, nu: float) -> np.ndarray:
    """Steady body-force-driven channel flow between bounce-back walls.

    With full-way bounce-back the no-slip planes sit half a cell outside
    the first/last *fluid* nodes.  For ``n`` fluid nodes the channel
    width is ``H = n`` (in lattice units) and the velocity at fluid node
    ``k`` (0-based) is::

        u(y) = F/(2 nu) * y (H - y),  y = k + 1/2

    Returns the profile at the ``n`` fluid nodes.
    """
    y = np.arange(n, dtype=np.float64) + 0.5
    H = float(n)
    return force / (2.0 * nu) * y * (H - y)


def taylor_green_velocity(shape: tuple[int, int], u0: float, t: float, nu: float):
    """2D Taylor-Green vortex velocity (embedded in 3D as z-invariant).

    ``u_x =  u0 cos(kx x) sin(ky y) exp(-nu (kx^2+ky^2) t)``
    ``u_y = -u0 (kx/ky) sin(kx x) cos(ky y) exp(-...)``

    on a periodic box of ``shape`` cells with one full period per axis.
    Site coordinates are cell centres ``x = i`` (lattice units).
    """
    nx, ny = shape
    kx = 2.0 * np.pi / nx
    ky = 2.0 * np.pi / ny
    x = np.arange(nx, dtype=np.float64)[:, None]
    y = np.arange(ny, dtype=np.float64)[None, :]
    decay = np.exp(-nu * (kx * kx + ky * ky) * t)
    ux = u0 * np.cos(kx * x) * np.sin(ky * y) * decay
    uy = -u0 * (kx / ky) * np.sin(kx * x) * np.cos(ky * y) * decay
    return ux, uy


def taylor_green_decay_rate(shape: tuple[int, int], nu: float) -> float:
    """Theoretical exponential decay rate of kinetic energy (= 2 nu k^2)."""
    nx, ny = shape
    kx = 2.0 * np.pi / nx
    ky = 2.0 * np.pi / ny
    return 2.0 * nu * (kx * kx + ky * ky)
