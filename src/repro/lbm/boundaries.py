"""Boundary conditions.

The paper emphasises (Sec 4.1) that LBM "affords great flexibility in
specifying boundary shapes": plane walls via bounce-back, complex
curved boundaries via the location of the intersection of the boundary
surface with lattice links (Mei et al. [24]).  We implement:

* :class:`BounceBackNodes` — full-way bounce-back on solid nodes, the
  workhorse for voxelized buildings.
* :class:`BouzidiCurvedBoundary` — linearly interpolated bounce-back
  parameterised by the link intersection fraction ``q`` (the
  boundary-link information the paper stores in textures).
* :class:`EquilibriumVelocityInlet` — imposed-velocity boundary used
  for the wind inflow in the city simulation (Sec 5).
* :class:`OutflowBoundary` — zero-gradient outlet.

All boundary objects operate on ghost-padded distribution arrays and
are applied after streaming; curved boundaries additionally snapshot
post-collision values before streaming (two-phase protocol).
"""

from __future__ import annotations

import numpy as np

from repro.lbm.equilibrium import equilibrium_site
from repro.lbm.lattice import Lattice
from repro.lbm.streaming import interior


def box_walls(shape: tuple[int, ...], axes) -> np.ndarray:
    """Solid mask with one-cell walls on both sides of each listed axis."""
    solid = np.zeros(shape, dtype=bool)
    for ax in axes:
        lo = [slice(None)] * len(shape)
        hi = [slice(None)] * len(shape)
        lo[ax] = 0
        hi[ax] = shape[ax] - 1
        solid[tuple(lo)] = True
        solid[tuple(hi)] = True
    return solid


class Boundary:
    """Interface for post-stream boundary handlers."""

    def pre_stream(self, fg: np.ndarray) -> None:
        """Snapshot anything needed from post-collision distributions."""

    def apply(self, fg: np.ndarray) -> None:
        """Fix up post-stream distributions (ghost-padded array)."""
        raise NotImplementedError


class BounceBackNodes(Boundary):
    """Full-way bounce-back at solid nodes.

    After streaming, every distribution that entered a solid node is
    reversed; next step it streams back into the fluid.  The effective
    no-slip wall lies midway between the solid node and its fluid
    neighbour, preserving the second-order accuracy of the scheme for
    plane walls.
    """

    def __init__(self, lattice: Lattice, solid: np.ndarray) -> None:
        self.lattice = lattice
        self.solid = np.asarray(solid, dtype=bool)

    def apply(self, fg: np.ndarray) -> None:
        D = self.lattice.D
        inner = (slice(None),) + interior(D)
        view = fg[inner]
        reversed_ = view[self.lattice.opp][:, self.solid]
        view[:, self.solid] = reversed_


class EquilibriumVelocityInlet(Boundary):
    """Imposed-velocity boundary on one domain face.

    Replaces the distributions of the face layer with the equilibrium
    at ``(rho, u)``.  Robust and adequate for the smooth wind inflow of
    the dispersion simulation; for exact mass control use with an
    opposite :class:`OutflowBoundary`.
    """

    def __init__(self, lattice: Lattice, axis: int, side: str, velocity,
                 rho: float = 1.0) -> None:
        if side not in ("low", "high"):
            raise ValueError("side must be 'low' or 'high'")
        self.lattice = lattice
        self.axis = int(axis)
        self.side = side
        self.velocity = np.asarray(velocity, dtype=np.float64)
        if self.velocity.shape != (lattice.D,):
            raise ValueError(f"velocity must have shape ({lattice.D},)")
        self.rho = float(rho)
        self._feq = equilibrium_site(lattice, self.rho, self.velocity)

    def _layer(self, fg: np.ndarray) -> tuple:
        D = self.lattice.D
        idx: list = [slice(None)] + [slice(1, -1)] * D
        idx[1 + self.axis] = 1 if self.side == "low" else fg.shape[1 + self.axis] - 2
        return tuple(idx)

    def apply(self, fg: np.ndarray) -> None:
        layer = self._layer(fg)
        feq = self._feq.astype(fg.dtype)
        fg[layer] = feq.reshape((self.lattice.Q,) + (1,) * (fg[layer].ndim - 1))


class OutflowBoundary(Boundary):
    """Zero-gradient outlet: copy the adjacent interior layer."""

    def __init__(self, lattice: Lattice, axis: int, side: str) -> None:
        if side not in ("low", "high"):
            raise ValueError("side must be 'low' or 'high'")
        self.lattice = lattice
        self.axis = int(axis)
        self.side = side

    def apply(self, fg: np.ndarray) -> None:
        D = self.lattice.D
        ax = 1 + self.axis
        dst: list = [slice(None)] + [slice(1, -1)] * D
        src: list = [slice(None)] + [slice(1, -1)] * D
        if self.side == "low":
            dst[ax], src[ax] = 1, 2
        else:
            n = None  # placeholder for clarity
            dst[ax], src[ax] = -2, -3
        fg[tuple(dst)] = fg[tuple(src)]


class BouzidiCurvedBoundary(Boundary):
    """Linearly interpolated bounce-back for curved walls.

    For each cut link ``i`` from fluid node ``x_f`` toward the wall with
    intersection fraction ``q = |x_f - x_wall| / |c_i|``::

        q < 1/2:  f_opp(x_f) = 2q fc_i(x_f) + (1-2q) fc_i(x_f - c_i)
        q >= 1/2: f_opp(x_f) = fc_i(x_f)/(2q) + (2q-1)/(2q) fc_opp(x_f)

    where ``fc`` are post-collision values (snapshotted in
    :meth:`pre_stream`).  This is the Bouzidi-Firdaouss-Lallemand
    scheme, equivalent in accuracy to the Mei-Luo-Shyy treatment the
    paper cites, and reduces to plain half-way bounce-back at q = 1/2.

    Parameters
    ----------
    lattice:
        Velocity set.
    links:
        Sequence of ``(cell, link_index, q)`` where ``cell`` is a
        length-D integer tuple of the *fluid* node (unpadded coords) and
        ``0 < q <= 1``.
    shape:
        Unpadded grid shape (for index validation).
    """

    def __init__(self, lattice: Lattice, links, shape: tuple[int, ...]) -> None:
        self.lattice = lattice
        self.shape = tuple(shape)
        cells, link_idx, qs = [], [], []
        for cell, i, q in links:
            cell = tuple(int(x) for x in cell)
            if not (0 < q <= 1.0):
                raise ValueError(f"q must be in (0,1], got {q}")
            if any(not (0 <= c < s) for c, s in zip(cell, self.shape)):
                raise ValueError(f"cell {cell} outside grid {self.shape}")
            cells.append(cell)
            link_idx.append(int(i))
            qs.append(float(q))
        self.cells = np.asarray(cells, dtype=np.int64).reshape(len(cells), lattice.D)
        self.link_idx = np.asarray(link_idx, dtype=np.int64)
        self.q = np.asarray(qs, dtype=np.float64)
        # Upstream node x_f - c_i for the q < 1/2 branch (clipped to grid;
        # clipping only matters if a cut link sits on the domain edge).
        c = lattice.c[self.link_idx]
        self.upstream = np.clip(self.cells - c, 0, np.asarray(self.shape) - 1)
        self._snap_here: np.ndarray | None = None
        self._snap_up: np.ndarray | None = None
        self._snap_opp: np.ndarray | None = None

    def _gather(self, fg: np.ndarray, links: np.ndarray, cells: np.ndarray) -> np.ndarray:
        # +1 converts unpadded coords to ghost-padded coords.
        idx = (links,) + tuple(cells[:, a] + 1 for a in range(self.lattice.D))
        return fg[idx]

    def pre_stream(self, fg: np.ndarray) -> None:
        opp = self.lattice.opp[self.link_idx]
        self._snap_here = self._gather(fg, self.link_idx, self.cells)
        self._snap_up = self._gather(fg, self.link_idx, self.upstream)
        self._snap_opp = self._gather(fg, opp, self.cells)

    def apply(self, fg: np.ndarray) -> None:
        if self._snap_here is None:
            raise RuntimeError("pre_stream must run before apply")
        q = self.q.astype(fg.dtype)
        lo = q < 0.5
        val = np.empty_like(self._snap_here)
        val[lo] = 2.0 * q[lo] * self._snap_here[lo] + (1.0 - 2.0 * q[lo]) * self._snap_up[lo]
        hi = ~lo
        val[hi] = (self._snap_here[hi] / (2.0 * q[hi])
                   + (2.0 * q[hi] - 1.0) / (2.0 * q[hi]) * self._snap_opp[hi])
        opp = self.lattice.opp[self.link_idx]
        idx = (opp,) + tuple(self.cells[:, a] + 1 for a in range(self.lattice.D))
        fg[idx] = val
