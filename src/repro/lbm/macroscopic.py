"""Macroscopic moments of the distribution field.

Density and momentum are the conserved moments of the LBM collision;
flow velocity is momentum over density.  The paper packs these per-site
quantities into one RGBA texture stack on the GPU (Sec 4.2).
"""

from __future__ import annotations

import numpy as np

from repro.lbm.lattice import Lattice


def density(f: np.ndarray) -> np.ndarray:
    """Density ``rho = sum_i f_i``; shape ``grid``."""
    return f.sum(axis=0)


def momentum(lattice: Lattice, f: np.ndarray) -> np.ndarray:
    """Momentum ``j_a = sum_i c_ia f_i``; shape ``(D,) + grid``."""
    c = lattice.c.astype(f.dtype)
    return np.einsum("qa,q...->a...", c, f)


def macroscopic(lattice: Lattice, f: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Density and velocity ``(rho, u)`` with ``u = j / rho``.

    Division is guarded against zero density (which only occurs at
    uninitialised solid sites); such sites get ``u = 0``.
    """
    rho = density(f)
    j = momentum(lattice, f)
    safe = np.where(rho > 0, rho, f.dtype.type(1.0))
    u = j / safe
    u[:, rho <= 0] = 0
    return rho, u
