"""Macroscopic moments of the distribution field.

Density and momentum are the conserved moments of the LBM collision;
flow velocity is momentum over density.  The paper packs these per-site
quantities into one RGBA texture stack on the GPU (Sec 4.2).
"""

from __future__ import annotations

import numpy as np

from repro.lbm.lattice import Lattice


def sum_over_links(f: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Reduction over the leading (link) axis, memory-layout-stable.

    ``np.sum`` picks its reduction blocking from the memory layout, so
    an AoS (link-fastest) distribution array sums in a different order
    than SoA and the low bits of the result differ.  This helper keeps
    numpy's reduction for SoA-ordered views (bit-identical to the
    historical ``f.sum(axis=0)``) and switches to an explicit
    sequential slot-order accumulation — the order numpy's pairwise
    reduction degenerates to on SoA for Q < its block size — exactly
    when the link axis is the fastest-varying, so both layouts produce
    identical bits.
    """
    if f.ndim > 1 and f.strides and abs(f.strides[0]) <= min(
            abs(s) for s in f.strides[1:]):
        if out is None:
            out = f[0].copy()
        else:
            np.copyto(out, f[0])
        for q in range(1, f.shape[0]):
            out += f[q]
        return out
    return f.sum(axis=0, out=out)


def density(f: np.ndarray) -> np.ndarray:
    """Density ``rho = sum_i f_i``; shape ``grid``."""
    return sum_over_links(f)


def momentum(lattice: Lattice, f: np.ndarray) -> np.ndarray:
    """Momentum ``j_a = sum_i c_ia f_i``; shape ``(D,) + grid``."""
    c = lattice.c.astype(f.dtype)
    return np.einsum("qa,q...->a...", c, f)


def macroscopic(lattice: Lattice, f: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Density and velocity ``(rho, u)`` with ``u = j / rho``.

    Division is guarded against zero density (which only occurs at
    uninitialised solid sites); such sites get ``u = 0``.
    """
    rho = density(f)
    j = momentum(lattice, f)
    safe = np.where(rho > 0, rho, f.dtype.type(1.0))
    u = j / safe
    u[:, rho <= 0] = 0
    return rho, u
