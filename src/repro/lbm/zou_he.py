"""Zou-He (non-equilibrium bounce-back) boundary conditions for D2Q9.

The equilibrium inlet used by the 3D urban simulation imposes both
density and velocity and is slightly dissipative.  The classic Zou-He
construction imposes an *exact* velocity (or pressure) on a boundary
layer by bouncing back the non-equilibrium part of the unknown
distributions.  It is the standard high-accuracy closure for channel
benchmarks, and this module provides it for the D2Q9 lattice used by
the 2D validation flows (lid-driven cavity, Couette, Poiseuille with
pressure drop).

Conventions: D2Q9 link order from :data:`repro.lbm.lattice.D2Q9` —
0:(0,0) 1:(+x) 2:(-x) 3:(+y) 4:(-y) 5:(+x+y) 6:(-x-y) 7:(+x-y) 8:(-x+y).
"""

from __future__ import annotations

import numpy as np

from repro.lbm.boundaries import Boundary
from repro.lbm.lattice import D2Q9, Lattice


def _axis_links(lattice: Lattice, axis: int, sign: int) -> np.ndarray:
    return np.nonzero(lattice.c[:, axis] == sign)[0]


class ZouHeVelocity2D(Boundary):
    """Zou-He velocity boundary on one face of a D2Q9 domain.

    Imposes the prescribed wall velocity ``(ux, uy)`` on the boundary
    layer exactly: density is computed from the known distributions,
    and the three unknown (incoming) distributions are reconstructed
    with the non-equilibrium bounce-back rule.

    Parameters
    ----------
    axis:
        0 (x faces) or 1 (y faces).
    side:
        ``"low"`` or ``"high"``.
    velocity:
        (ux, uy) to impose (e.g. the moving lid of a cavity).
    exclude:
        Optional bool mask along the boundary layer (length = the
        domain extent in the other axis): True cells are left alone.
        Required where the layer crosses solid walls (cavity corners) —
        Zou-He must not overwrite bounce-back nodes.
    """

    def __init__(self, axis: int, side: str, velocity, exclude=None) -> None:
        if axis not in (0, 1):
            raise ValueError("axis must be 0 or 1")
        if side not in ("low", "high"):
            raise ValueError("side must be 'low' or 'high'")
        self.lattice = D2Q9
        self.axis = axis
        self.side = side
        self.velocity = np.asarray(velocity, dtype=np.float64)
        if self.velocity.shape != (2,):
            raise ValueError("velocity must be length 2")
        self.exclude = None if exclude is None else np.asarray(exclude, bool)
        # Links pointing INTO the domain are the unknowns.
        inward = 1 if side == "low" else -1
        self.unknown = _axis_links(D2Q9, axis, inward)
        self.known_opposite = D2Q9.opp[self.unknown]
        self._inward = inward

    def _layer(self, fg: np.ndarray) -> tuple:
        idx: list = [slice(None), slice(1, -1), slice(1, -1)]
        idx[1 + self.axis] = 1 if self.side == "low" else fg.shape[1 + self.axis] - 2
        return tuple(idx)

    def apply(self, fg: np.ndarray) -> None:
        lat = self.lattice
        layer = fg[self._layer(fg)]          # (9, n) view of the face
        snapshot = (layer[:, self.exclude].copy()
                    if self.exclude is not None else None)
        c = lat.c
        un, ut = (self.velocity[self.axis],
                  self.velocity[1 - self.axis])
        un = un * self._inward               # normal speed, inward-positive
        # Density from the known populations (Zou & He 1997):
        # rho = (f0 + 2*sum(outgoing) + sum(tangential)) / (1 - un)
        tangential = np.nonzero(c[:, self.axis] == 0)[0]
        outgoing = _axis_links(lat, self.axis, -self._inward)
        rho = (layer[tangential].sum(axis=0)
               + 2.0 * layer[outgoing].sum(axis=0)) / (1.0 - un)
        # Non-equilibrium bounce-back for the three unknowns:
        # f_i = f_opp(i) + (feq_i - feq_opp(i)) evaluated at (rho, u).
        u_vec = np.zeros(2)
        u_vec[self.axis] = self.velocity[self.axis]
        u_vec[1 - self.axis] = self.velocity[1 - self.axis]
        w = lat.w
        usq = float(u_vec @ u_vec)
        for i, j in zip(self.unknown, self.known_opposite):
            cu_i = float(c[i] @ u_vec)
            cu_j = float(c[j] @ u_vec)
            feq_i = w[i] * rho * (1 + 3 * cu_i + 4.5 * cu_i ** 2 - 1.5 * usq)
            feq_j = w[j] * rho * (1 + 3 * cu_j + 4.5 * cu_j ** 2 - 1.5 * usq)
            layer[i] = layer[j] + (feq_i - feq_j).astype(layer.dtype)
        self._transverse_correction(layer, rho, self.velocity[1 - self.axis])
        if snapshot is not None:
            layer[:, self.exclude] = snapshot

    def _transverse_correction(self, layer: np.ndarray, rho: np.ndarray,
                               ut: float) -> None:
        """Zou-He's transverse-momentum redistribution: after the
        non-equilibrium bounce-back the tangential momentum is off by
        the (f_t+ - f_t-)/2 term; shift it between the two diagonal
        unknowns so the tangential velocity is imposed *exactly* (mass
        and normal momentum are untouched: the two diagonals share c_n
        and have opposite c_t)."""
        ct = self.lattice.c[:, 1 - self.axis].astype(np.float64)
        mom_t = np.einsum("q,q...->...", ct, layer.astype(np.float64))
        err = mom_t - rho * ut
        for i in self.unknown:
            cti = ct[i]
            if cti != 0:
                layer[i] = layer[i] - (cti * err / 2.0).astype(layer.dtype)


class ZouHePressure2D(Boundary):
    """Zou-He pressure (density) boundary on one x/y face of D2Q9.

    Imposes ``rho`` exactly and zero tangential velocity; the normal
    velocity adjusts to whatever the flow requires (used for
    pressure-driven channel benchmarks).
    """

    def __init__(self, axis: int, side: str, rho: float, exclude=None) -> None:
        if axis not in (0, 1):
            raise ValueError("axis must be 0 or 1")
        if side not in ("low", "high"):
            raise ValueError("side must be 'low' or 'high'")
        self.lattice = D2Q9
        self.axis = axis
        self.side = side
        self.rho = float(rho)
        self.exclude = None if exclude is None else np.asarray(exclude, bool)
        inward = 1 if side == "low" else -1
        self.unknown = _axis_links(D2Q9, axis, inward)
        self.known_opposite = D2Q9.opp[self.unknown]
        self._inward = inward

    def _layer(self, fg: np.ndarray) -> tuple:
        idx: list = [slice(None), slice(1, -1), slice(1, -1)]
        idx[1 + self.axis] = 1 if self.side == "low" else fg.shape[1 + self.axis] - 2
        return tuple(idx)

    def apply(self, fg: np.ndarray) -> None:
        lat = self.lattice
        layer = fg[self._layer(fg)]
        snapshot = (layer[:, self.exclude].copy()
                    if self.exclude is not None else None)
        c = lat.c
        tangential = np.nonzero(c[:, self.axis] == 0)[0]
        outgoing = _axis_links(lat, self.axis, -self._inward)
        # Normal velocity implied by the imposed density:
        un = 1.0 - (layer[tangential].sum(axis=0)
                    + 2.0 * layer[outgoing].sum(axis=0)) / self.rho
        w = lat.w
        for i, j in zip(self.unknown, self.known_opposite):
            cn_i = float(c[i, self.axis]) * self._inward
            feq_diff = w[i] * self.rho * 6.0 * cn_i * un  # feq_i - feq_opp
            layer[i] = layer[j] + feq_diff.astype(layer.dtype)
        # Impose zero tangential velocity exactly (same redistribution
        # as the velocity variant).
        ct = lat.c[:, 1 - self.axis].astype(np.float64)
        mom_t = np.einsum("q,q...->...", ct, layer.astype(np.float64))
        for i in self.unknown:
            cti = ct[i]
            if cti != 0:
                layer[i] = layer[i] - (cti * mom_t / 2.0).astype(layer.dtype)
        if snapshot is not None:
            layer[:, self.exclude] = snapshot
