"""Streaming (propagation) step.

Particles stream synchronously along their links in discrete time
steps (Sec 4.1).  Two variants are provided:

``stream_periodic``
    Toroidal streaming via ``np.roll`` — used by the single-domain
    reference solver for periodic problems and by tests.

``stream_pull``
    Pull-scheme streaming on an array with a one-cell ghost shell:
    ``f_new[i][x] = f_old[i][x - c_i]`` for interior x.  The ghost shell
    holds either copies of the opposite boundary (periodic), inlet
    populations, or — in the distributed solver — the neighbour
    sub-domain's border populations received over the (simulated)
    network.  This is exactly the decomposition contract of Sec 4.3.
"""

from __future__ import annotations

import numpy as np

from repro.lbm.lattice import Lattice


def stream_periodic(lattice: Lattice, f: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Periodic streaming; returns a new array (or fills ``out``).

    ``np.roll`` by ``+c_i`` implements the pull update
    ``f_new[i](x) = f_old[i](x - c_i)`` on a torus.
    """
    if out is None:
        out = np.empty_like(f)
    axes = tuple(range(f.ndim - 1))
    for i in range(lattice.Q):
        shift = tuple(int(s) for s in lattice.c[i])
        out[i] = np.roll(f[i], shift=shift, axis=axes)
    return out


def interior(ndim: int) -> tuple[slice, ...]:
    """Slice selecting the interior of a ghost-padded array."""
    return tuple(slice(1, -1) for _ in range(ndim))


def shell_partition(shape: tuple[int, ...], depth: int = 1,
                    ) -> tuple[list[tuple[slice, ...]], tuple[slice, ...]]:
    """Partition a grid into its depth-``depth`` boundary shell and core.

    Returns ``(shell_slabs, inner)``: a list of disjoint slab slices
    (onion peeling, axis by axis) whose union is the set of cells within
    ``depth`` of any grid face, plus the inner-core slice covering
    everything else.  Together the slabs and the core tile ``shape``
    exactly, so a pointwise kernel applied slab-by-slab visits every
    cell exactly once — the split the cluster drivers use to collide
    border cells first and overlap the halo exchange with the inner
    core (Sec 4.4).

    Extents smaller than ``2 * depth`` are handled by clamping: the
    core is empty along that axis and the two slabs do not overlap.
    """
    ndim = len(shape)
    bounds = []
    for n in shape:
        lo = min(depth, n)
        bounds.append((lo, max(lo, n - depth)))
    slabs: list[tuple[slice, ...]] = []
    for ax in range(ndim):
        peeled = [slice(bounds[a][0], bounds[a][1]) for a in range(ax)]
        # Concrete bounds (never slice(None)) so callers can translate
        # the slices into padded/ghost coordinates via .start/.stop.
        rest = [slice(0, shape[a]) for a in range(ax + 1, ndim)]
        lo, hi = bounds[ax]
        if lo > 0:
            slabs.append(tuple(peeled + [slice(0, lo)] + rest))
        if hi < shape[ax]:
            slabs.append(tuple(peeled + [slice(hi, shape[ax])] + rest))
    inner = tuple(slice(lo, hi) for lo, hi in bounds)
    return slabs, inner


def pull_slice_table(lattice: Lattice,
                     padded_shape: tuple[int, ...]) -> list[tuple[slice, ...]]:
    """Per-direction source slices for pull-streaming a padded array.

    ``table[i]`` selects the cells of a ghost-padded grid (shape
    ``padded_shape``, no leading Q axis) that stream along link ``i``
    into the interior: ``out[i][interior] = f[i][table[i]]``.  Building
    this once per solver removes the per-step tuple construction from
    the hot loop (used by :func:`stream_pull` callers and the fused
    kernel in :mod:`repro.lbm.fused`).
    """
    return [tuple(slice(1 - int(ci), n - 1 - int(ci))
                  for n, ci in zip(padded_shape, lattice.c[i]))
            for i in range(lattice.Q)]


def stream_pull(lattice: Lattice, fg: np.ndarray, out: np.ndarray | None = None,
                slices: list[tuple[slice, ...]] | None = None) -> np.ndarray:
    """Pull-stream a ghost-padded distribution array.

    Parameters
    ----------
    fg:
        Ghost-padded distributions, shape ``(Q, nx+2, ny+2, nz+2)`` (or
        2D analogue).  Ghost cells must already contain whatever should
        stream in (filled by the halo exchange or boundary handler).
    out:
        Optional ghost-padded output array.  Ghost layers of ``out`` are
        left untouched (they are overwritten by the next exchange).
    slices:
        Optional precomputed :func:`pull_slice_table` for ``fg``'s padded
        shape; avoids rebuilding the per-direction slice tuples per call.

    Returns
    -------
    numpy.ndarray
        ``out`` with interior cells updated.
    """
    D = lattice.D
    if out is None:
        out = np.empty_like(fg)
    if slices is None:
        slices = pull_slice_table(lattice, fg.shape[1:])
    dst = interior(D)
    for i in range(lattice.Q):
        out[(i,) + dst] = fg[(i,) + slices[i]]
    return out


def pad_with_ghosts(f: np.ndarray) -> np.ndarray:
    """Return a copy of ``f`` padded with a zero ghost shell on each axis."""
    Q = f.shape[0]
    padded = np.zeros((Q,) + tuple(s + 2 for s in f.shape[1:]), dtype=f.dtype)
    padded[(slice(None),) + interior(f.ndim - 1)] = f
    return padded


def fill_ghosts_periodic(f: np.ndarray) -> None:
    """Fill the ghost shell of a padded array with periodic wrap copies.

    Handles faces, edges and corners by wrapping one axis at a time
    (after all axes are processed the diagonals are consistent).
    """
    for ax in range(1, f.ndim):
        n = f.shape[ax]
        lo = [slice(None)] * f.ndim
        hi = [slice(None)] * f.ndim
        lo[ax] = 0
        hi[ax] = n - 2
        f[tuple(lo)] = f[tuple(hi)]
        lo[ax] = n - 1
        hi[ax] = 1
        f[tuple(lo)] = f[tuple(hi)]


def fill_ghosts_zero_gradient(f: np.ndarray) -> None:
    """Fill the ghost shell with zero-gradient (edge-copy) values.

    Per axis the two ghost planes become copies of the adjacent edge
    layer, so nothing spurious streams in across a bounded face;
    inlet/outflow handlers overwrite their faces with the real
    condition afterwards.  Axes are processed sequentially over the
    full plane extent, so edge/corner ghosts end up holding the
    component-wise clamp of the nearest interior cell — exactly the
    closure the bounded reference solver applies.
    """
    for ax in range(1, f.ndim):
        n = f.shape[ax]
        lo = [slice(None)] * f.ndim
        src = [slice(None)] * f.ndim
        lo[ax], src[ax] = 0, 1
        f[tuple(lo)] = f[tuple(src)]
        lo[ax], src[ax] = n - 1, n - 2
        f[tuple(lo)] = f[tuple(src)]


def fold_face_zero_gradient(lattice: Lattice, fg: np.ndarray,
                            axis: int, direction: int) -> None:
    """Bounded-face analogue of the periodic crossing-slot fold.

    After the AA odd-phase scatter, a border cell ``x`` on a bounded
    face is still missing the inbound populations whose pull source
    ``x - c_i`` would be a ghost cell; the reference solver fills those
    ghosts zero-gradient before streaming, so the streamed-in value is
    ``h_i`` of the clamped (one row inside) source.  Because the scatter
    pushed ``h_i(y)`` to location ``(i, y + c_i)``, that exact value
    already sits one row inside the face for every crossing slot —
    including solid rows, where the mid-pair layout stores the same
    population.  The fold therefore copies, for the inward-pointing
    slots (``c_i[axis] == -direction``), the border layer from the
    adjacent interior layer over the *full* padded extent of the other
    axes (rims included, so later-axis folds and the cluster's reverse
    exchange relay corner contributions exactly like the fill does).
    """
    n = fg.shape[1 + axis]
    slots = np.flatnonzero(lattice.c[:, axis] == -direction)
    border = 1 if direction == -1 else n - 2
    inner = border + (1 if direction == -1 else -1)
    dst: list = [slice(None)] * fg.ndim
    src: list = [slice(None)] * fg.ndim
    dst[0] = slots
    src[0] = slots
    dst[1 + axis] = border
    src[1 + axis] = inner
    fg[tuple(dst)] = fg[tuple(src)]


def fold_ghosts_zero_gradient(lattice: Lattice, fg: np.ndarray) -> None:
    """Apply :func:`fold_face_zero_gradient` to every face, axis by axis.

    Sequential axis order with full-extent copies resolves the
    double-inward corner slots by chaining (the later axis reads the
    already-folded neighbour), reproducing the component-wise clamp of
    the reference solver's sequential zero-gradient ghost fill.
    """
    for ax in range(fg.ndim - 1):
        for direction in (-1, 1):
            fold_face_zero_gradient(lattice, fg, ax, direction)


def fold_ghosts_periodic(lattice: Lattice, fg: np.ndarray) -> None:
    """Fold ghost-plane *crossing* populations onto their wrap image.

    The inverse of :func:`fill_ghosts_periodic`, used by the AA-pattern
    kernel (:mod:`repro.lbm.aa`): its odd-phase scatter pushes
    post-collision populations of border cells into the ghost shell
    (``a_i(x + c_i)`` with ``x + c_i`` outside the interior).  On a
    periodic domain those locations are images of interior cells on the
    opposite side, so per axis the two ghost planes are copied back onto
    the adjacent far-side interior layers — but only for the link slots
    that actually cross that face (``c_i[ax] == +1`` for the high ghost,
    ``-1`` for the low ghost); the remaining slots of a ghost plane hold
    stale fill data that must not leak inward.

    Axes are processed sequentially over the full plane extent, so
    edge/corner contributions relay through the rims exactly like the
    fill handles diagonals (and like the cluster's two-hop routing).
    """
    for ax in range(fg.ndim - 1):
        n = fg.shape[1 + ax]
        lo_slots = np.flatnonzero(lattice.c[:, ax] == -1)
        hi_slots = np.flatnonzero(lattice.c[:, ax] == 1)
        for slots, ghost, image in ((hi_slots, n - 1, 1),
                                    (lo_slots, 0, n - 2)):
            src: list = [slice(None)] * fg.ndim
            dst: list = [slice(None)] * fg.ndim
            src[0] = slots
            dst[0] = slots
            src[1 + ax] = ghost
            dst[1 + ax] = image
            fg[tuple(dst)] = fg[tuple(src)]
