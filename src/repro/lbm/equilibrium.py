"""Equilibrium distribution for the BGK model.

The BGK collision (Sec 4.1) relaxes distributions toward the discrete
Maxwell-Boltzmann equilibrium expanded to second order in velocity::

    f_i^eq = w_i * rho * (1 + 3 (c_i . u) + 4.5 (c_i . u)^2 - 1.5 u.u)

(for lattices with cs^2 = 1/3).  This expansion is what makes the LBM
second-order accurate and, in the limit of vanishing time step, yields
the incompressible Navier-Stokes equations.
"""

from __future__ import annotations

import numpy as np

from repro.lbm.lattice import Lattice


def equilibrium(lattice: Lattice, rho: np.ndarray, u: np.ndarray,
                out: np.ndarray | None = None) -> np.ndarray:
    """Compute ``f_eq`` for every site.

    Parameters
    ----------
    lattice:
        The velocity set.
    rho:
        Density field, shape ``grid`` (e.g. ``(nx, ny, nz)``).
    u:
        Velocity field, shape ``(D,) + grid``.
    out:
        Optional preallocated output of shape ``(Q,) + grid``; reused to
        avoid allocations in the hot loop (in-place idiom).

    Returns
    -------
    numpy.ndarray
        Equilibrium distributions, shape ``(Q,) + grid``, dtype of ``rho``.
    """
    rho = np.asarray(rho)
    u = np.asarray(u)
    if u.shape[0] != lattice.D:
        raise ValueError(f"u must have leading dim {lattice.D}, got {u.shape}")
    dtype = rho.dtype
    grid = rho.shape
    if out is None:
        out = np.empty((lattice.Q,) + grid, dtype=dtype)
    inv_cs2 = dtype.type(1.0 / lattice.cs2)          # 3
    half_inv_cs4 = dtype.type(0.5 / lattice.cs2 ** 2)  # 4.5
    half_inv_cs2 = dtype.type(0.5 / lattice.cs2)      # 1.5
    usq = np.einsum("a...,a...->...", u, u)
    c = lattice.c.astype(dtype)
    w = lattice.w.astype(dtype)
    for i in range(lattice.Q):
        cu = np.einsum("a,a...->...", c[i], u)
        np.multiply(
            w[i] * rho,
            1.0 + inv_cs2 * cu + half_inv_cs4 * cu * cu - half_inv_cs2 * usq,
            out=out[i],
        )
    return out


def equilibrium_site(lattice: Lattice, rho: float, u) -> np.ndarray:
    """Equilibrium at a single site (scalar rho, length-D velocity).

    Convenience wrapper used for boundary conditions and initialisation.
    """
    u = np.asarray(u, dtype=np.float64).reshape(lattice.D, 1)
    r = np.asarray([rho], dtype=np.float64)
    return equilibrium(lattice, r, u)[:, 0]
