"""AA-pattern (swap-free, single-array) two-phase LBM step kernel.

Every other kernel in this package (split, fused, sparse) keeps **two**
full ``(Q, X, Y, Z)`` distribution arrays and copies one into the other
on stream — doubling both the memory traffic and the resident working
set of what the paper argues is a bandwidth-bound method.  The
AA-pattern (Bailey et al.; see also arXiv:1112.0850, arXiv:1703.00185)
removes the second array entirely by alternating two in-place phases on
a single array:

* **even phase** — collide in place with *reversed-direction* writes:
  for every site ``y`` the post-collision value ``g_i(y)`` is stored in
  the slot of the opposite link, ``a_opp(i)(y) <- g_i(y)`` (solid sites
  store plain reversed copies).  No data moves between sites, so the
  phase is pointwise and trivially parallel over any region split.
* **odd phase** — gather, collide, scatter: each site reads its
  streamed-in populations from the rotated layout
  (``phi_i(x) = a_opp(i)(x - c_i)``), relaxes them, and scatters the
  results forward (``a_i(x + c_i) <- h_i(x)`` for fluid ``x``), after
  which the array is back in canonical layout.

Correctness hinges on a *location-ownership* property: in the odd
phase, location ``(i, y)`` is read **and** written only by the site
``y - c_i``.  A site's read set equals its write set, so any region
decomposition (boundary shell / inner core, slabs) is hazard-free in
any execution order — which is exactly what lets the cluster drivers
keep the Sec-4.4 communication/computation overlap, and what lets this
kernel cache-block: whole-domain phases sweep the grid in axis-0 slabs
(:data:`SLAB_TARGET_CELLS`) so the ~10 scratch passes per link run on
slabs that stay cache-resident instead of round-tripping to memory —
the single-array layout means the hot set per slab is one distribution
window plus the scratch planes, about half the fused kernel's.

Full-way bounce-back falls out of the layout: the even phase's reversed
write at a solid site *is* the bounce of that step combined with the
next step's streaming, so the locations owned by solid sites already
hold the right populations when the odd phase completes, and the
ordinary :class:`~repro.lbm.boundaries.BounceBackNodes` swap applied
after the odd phase finishes the pair.

Bit-exactness contract
----------------------
After every **pair** of steps the array equals the reference solver's
distributions bit for bit (the same ``np.array_equal`` contract the
fused and sparse kernels pin); mid-pair, the macroscopic fields and the
reconstructed distributions (:meth:`AAStepKernel.reconstruct`) are
bit-identical every step.  All arithmetic replicates the fused kernel's
op order (itself bit-equal to the phase-split reference): same
``sum``/``einsum`` moment reductions, same equilibrium expression
order, same guarded division, same relaxation spelling — and every one
of those operations is per-site, so the slab sweep cannot perturb a
bit.  The odd phase's manual momentum accumulation skips
zero-coefficient links; this can only flip signed zeros in ``j``/``u``,
which IEEE-754 guarantees cannot reach the equilibrium value (``u``
enters via ``c_i . u`` and ``u . u`` only, and ``1 + (+/-0) == 1.0``).

Eligibility: plain BGK collision and boundary handlers limited to the
types the rotated applicator supports
(:data:`repro.lbm.esoteric.SUPPORTED_BOUNDARY_TYPES` — the dispersion
scenario's inlet/outflow; anything else would read or write the rotated
mid-pair layout incorrectly).  Ghost traffic is handled per domain
kind: periodic single-domain by fill/fold, *bounded* single-domain by
the zero-gradient fill and crossing-slot fold
(:func:`repro.lbm.streaming.fold_ghosts_zero_gradient`) with handlers
imposed through the rotated write rule
(:class:`repro.lbm.esoteric.RotatedBoundaryApplicator`), and clusters
by a driver that has claimed the halo protocol
(``solver.aa_halo_managed``): even steps reuse the forward
border->ghost exchange, odd steps run the reverse ghost->border
exchange with boundary faces folding locally instead of wrapping (see
``repro.core.cluster_lbm``).
"""

from __future__ import annotations

import numpy as np

from repro.lbm.lattice import Lattice
from repro.lbm.macroscopic import sum_over_links
from repro.lbm.streaming import (fill_ghosts_periodic,
                                 fill_ghosts_zero_gradient,
                                 fold_ghosts_periodic,
                                 fold_ghosts_zero_gradient)
from repro.lbm.fused import build_solid_padded

#: Whole-domain phases sweep axis-0 slabs of roughly this many cells so
#: the per-link scratch passes reuse cache-resident slabs.  Slabs span
#: the full extent of the trailing axes, keeping every scratch view
#: contiguous (numpy then collapses the element loops).
SLAB_TARGET_CELLS = 32768


class AAStepKernel:
    """Swap-free AA-pattern kernel bound to one ``LBMSolver``.

    The kernel owns per-solver scratch planes (moments plus expression
    buffers).  Each buffer is allocated once at the padded shape and
    additionally exposed as an interior-shaped *alias* of the same
    memory (the even phase works in padded coordinates, the odd phase
    in interior coordinates; they never run concurrently).  It never
    touches the solver's spare distribution buffer —
    ``solver._fg_next_buf`` stays ``None``, which tests assert as the
    working-set contract.
    """

    def __init__(self, solver) -> None:
        from repro.lbm.collision import BGKCollision
        if type(solver.collision) is not BGKCollision:
            raise TypeError("AAStepKernel requires a plain BGKCollision")
        if solver.boundaries:
            from repro.lbm.esoteric import boundaries_supported
            if not boundaries_supported(solver.boundaries):
                raise TypeError(
                    "AAStepKernel supports only inlet/outflow boundary "
                    "handlers (rotated closure, see repro.lbm.esoteric)")
        lat: Lattice = solver.lattice
        dtype = solver.dtype
        pshape = solver.fg.shape[1:]
        ishape = solver.shape
        self.solver = solver
        self.lattice = lat
        self.omega = dtype.type(solver.collision.omega)
        self._c = lat.c.astype(dtype)
        self._w = lat.w.astype(dtype)
        self._one = dtype.type(1.0)
        self._zero = dtype.type(0.0)
        self._inv_cs2 = dtype.type(1.0 / lat.cs2)
        self._half_inv_cs4 = dtype.type(0.5 / lat.cs2 ** 2)
        self._half_inv_cs2 = dtype.type(0.5 / lat.cs2)
        #: Opposite-link pairs (i < opp(i)) and the rest links.
        self._pairs = [(i, int(lat.opp[i])) for i in range(lat.Q)
                       if i < int(lat.opp[i])]
        self._rest = [i for i in range(lat.Q) if int(lat.opp[i]) == i]
        isize = int(np.prod(ishape))

        def dual(lead=()):
            """One allocation, padded view + interior-shaped alias."""
            pad = np.empty(tuple(lead) + pshape, dtype)
            n = isize * (int(np.prod(lead)) if lead else 1)
            return pad, pad.reshape(-1)[:n].reshape(tuple(lead) + ishape)

        self.rho, self.rho_i = dual()
        self.j, self.j_i = dual((lat.D,))
        self.u, self.u_i = dual((lat.D,))
        self.usq, self.usq_i = dual()
        self._cu, self._cu_i = dual()
        self._expr, self._expr_i = dual()
        self._expr2, self._expr2_i = dual()
        self._wr, self._wr_i = dual()
        pb = np.empty(pshape, bool)
        self._bool, self._bool_i = pb, pb.reshape(-1)[:isize].reshape(ishape)
        # Concrete bounds (never negative stops) so ``_shift`` works.
        self._interior = tuple(slice(1, n - 1) for n in pshape)
        self._ifull = tuple(slice(0, n) for n in ishape)
        self._pfull = tuple(slice(0, n) for n in pshape)
        trailing = int(np.prod(ishape[1:])) if len(ishape) > 1 else 1
        self._slab = max(1, SLAB_TARGET_CELLS // trailing)
        self.solid_padded = (build_solid_padded(solver, pshape)
                             if solver.solid.any() else None)
        #: Rotated boundary applicator, built lazily on first use (only
        #: solvers with handlers ever need one).
        self._rotated_bc = None
        if solver.counters is not None:
            n_bufs = 9 + (1 if self.solid_padded is not None else 0)
            solver.counters.alloc("aa.workspace", n_bufs)

    # ------------------------------------------------------------------
    @staticmethod
    def eligible(solver) -> bool:
        """True if ``solver`` can run the AA pipeline.

        Requires plain BGK collision and only boundary handlers the
        rotated closure supports (inlet/outflow; anything else would
        observe the rotated mid-pair layout).  Both periodic and
        bounded domains are eligible: ghost traffic is controlled by
        this kernel (fill/fold, periodic or zero-gradient) or by a
        cluster driver (``aa_halo_managed``).
        """
        from repro.lbm.collision import BGKCollision
        from repro.lbm.esoteric import boundaries_supported
        if type(solver.collision) is not BGKCollision:
            return False
        return boundaries_supported(solver.boundaries)

    # -- region plumbing -------------------------------------------------
    @staticmethod
    def _padded_region(region) -> tuple[slice, ...]:
        """Interior-coordinate slab -> padded-array slices (+1 shift)."""
        return tuple(slice(s.start + 1, s.stop + 1) for s in region)

    @staticmethod
    def _shift(P: tuple[slice, ...], vec) -> tuple[slice, ...]:
        return tuple(slice(s.start + int(v), s.stop + int(v))
                     for s, v in zip(P, vec))

    def _guarded_velocity(self, rho, j, u, wr, bl) -> None:
        """``u = j / rho`` with the reference guarded-divide spelling.

        The branch condition is evaluated per region, but both branches
        are bit-identical per site wherever ``rho > 0`` (and force
        ``u = 0`` where it is not), so region splits cannot perturb it.
        """
        np.greater(rho, 0, out=bl)
        if bl.all():
            np.divide(j, rho, out=u)
        else:
            np.copyto(wr, rho)
            np.logical_not(bl, out=bl)
            np.copyto(wr, self._one, where=bl)
            np.divide(j, wr, out=u)
            np.less_equal(rho, 0, out=bl)
            np.copyto(u, self._zero, where=bl)

    def _relax_into(self, i: int, src, out, rho, u, usq, cu, wr, add):
        """``h_i = src + omega * (feq_i - src)`` in the fused op order."""
        np.einsum("a,a...->...", self._c[i], u, out=cu)
        np.multiply(cu, self._half_inv_cs4, out=out)
        out *= cu
        cu *= self._inv_cs2
        cu += self._one
        out += cu
        out -= usq
        np.multiply(rho, self._w[i], out=wr)
        np.multiply(wr, out, out=out)
        np.subtract(out, src, out=out)
        out *= self.omega
        out += src
        if add is not None:
            out += add[i]
        return out

    # -- the two phases --------------------------------------------------
    def even_phase(self, region=None) -> None:
        """In-place collide with reversed-direction writes.

        ``region`` is an interior-coordinate slab (concrete bounds, as
        produced by ``shell_partition``) or ``None`` for the whole
        padded array, swept in cache-blocked axis-0 slabs — processing
        the ghost shell too is harmless (its rotated contents are
        overwritten by the subsequent fill or halo exchange) and keeps
        slab views contiguous.
        """
        if region is not None:
            self._even_region(self._padded_region(region))
            return
        n0 = self.solver.fg.shape[1]
        rest = self._pfull[1:]
        for a in range(0, n0, self._slab):
            self._even_region((slice(a, min(a + self._slab, n0)),) + rest)

    def _even_region(self, P: tuple[slice, ...]) -> None:
        s = self.solver
        fg = s.fg
        rho = self.rho[P]
        if rho.size == 0:
            return
        fgP = fg[(slice(None),) + P]
        u = self.u[(slice(None),) + P]
        usq, bl, wr = self.usq[P], self._bool[P], self._wr[P]
        # Moments exactly as the fused kernel computes them (the
        # layout-stable reduction keeps AoS bit-identical to SoA).
        sum_over_links(fgP, out=rho)
        np.einsum("qa,q...->a...", self._c, fgP,
                  out=self.j[(slice(None),) + P])
        self._guarded_velocity(rho, self.j[(slice(None),) + P], u, wr, bl)
        np.einsum("a...,a...->...", u, u, out=usq)
        usq *= self._half_inv_cs2
        collision = s.collision
        add = (collision._force_add(fg.dtype)
               if collision.force is not None else None)
        solid = (self.solid_padded[P] if self.solid_padded is not None
                 else None)
        cu, e1, e2 = self._cu[P], self._expr[P], self._expr2[P]
        for i, o in self._pairs:
            fgi = fg[(i,) + P]
            fgo = fg[(o,) + P]
            gi = self._relax_into(i, fgi, e1, rho, u, usq, cu, wr, add)
            go = self._relax_into(o, fgo, e2, rho, u, usq, cu, wr, add)
            if solid is not None:
                # Solid sites (and ghost images) keep pre-collision
                # values; the reversed write then performs this step's
                # bounce combined with the next step's streaming.
                np.copyto(gi, fgi, where=solid)
                np.copyto(go, fgo, where=solid)
            fgo[...] = gi          # a_opp(i)(y) <- g_i(y)
            fgi[...] = go
        for r in self._rest:
            fgr = fg[(r,) + P]
            gr = self._relax_into(r, fgr, e1, rho, u, usq, cu, wr, add)
            if solid is not None:
                np.copyto(gr, fgr, where=solid)
            fgr[...] = gr

    def odd_phase(self, region=None) -> None:
        """Gather-collide-scatter; restores the canonical layout.

        ``region`` is an interior-coordinate slab (concrete bounds) or
        ``None`` for the whole interior, swept in cache-blocked axis-0
        slabs.  Reads the rotated layout (ghosts must hold the
        post-even-phase fill/exchange), scatters relaxed populations of
        *fluid* sites forward; locations owned by solid sites are left
        untouched (they already hold the bounced populations, see the
        module docstring).  Region splits are hazard-free: a region
        reads and writes exactly the locations its own sites own.
        """
        if region is not None:
            self._odd_region(tuple(region))
            return
        n0 = self.solver.shape[0]
        rest = self._ifull[1:]
        for a in range(0, n0, self._slab):
            self._odd_region((slice(a, min(a + self._slab, n0)),) + rest)

    def _odd_region(self, R: tuple[slice, ...]) -> None:
        rho = self.rho_i[R]
        if rho.size == 0:
            return
        s = self.solver
        fg = s.fg
        lat = self.lattice
        opp, c = lat.opp, lat.c
        P = self._padded_region(R)
        views = [fg[(int(opp[q]),) + self._shift(P, -c[q])]
                 for q in range(lat.Q)]
        u = self.u_i[(slice(None),) + R]
        usq, bl, wr = self.usq_i[R], self._bool_i[R], self._wr_i[R]
        # Density in slot order — identical accumulation to the
        # reference's ``sum(axis=0)`` (pairwise summation degenerates
        # to sequential for Q=19 terms).
        np.copyto(rho, views[0])
        for q in range(1, lat.Q):
            rho += views[q]
        # Momentum: the reference einsum accumulates c[q,a] * f_q in
        # slot order; skipping the zero coefficients is bit-equal up to
        # signed zeros that cannot reach the equilibrium.
        for a in range(lat.D):
            ja = self.j_i[(a,) + R]
            first = True
            for q in range(lat.Q):
                coef = int(c[q][a])
                if coef == 0:
                    continue
                if first:
                    if coef > 0:
                        np.copyto(ja, views[q])
                    else:
                        np.negative(views[q], out=ja)
                    first = False
                elif coef > 0:
                    ja += views[q]
                else:
                    ja -= views[q]
        self._guarded_velocity(rho, self.j_i[(slice(None),) + R], u, wr, bl)
        np.einsum("a...,a...->...", u, u, out=usq)
        usq *= self._half_inv_cs2
        collision = s.collision
        add = (collision._force_add(fg.dtype)
               if collision.force is not None else None)
        fluid = s.fluid[R] if self.solid_padded is not None else None
        cu = self._cu_i[R]
        e1, e2 = self._expr_i[R], self._expr2_i[R]
        for i, o in self._pairs:
            A = views[i]           # = fg[o][P - c_i]: phi_i, target of h_o
            B = views[o]           # = fg[i][P + c_i]: phi_o, target of h_i
            hi = self._relax_into(i, A, e1, rho, u, usq, cu, wr, add)
            ho = self._relax_into(o, B, e2, rho, u, usq, cu, wr, add)
            if fluid is not None:
                np.copyto(B, hi, where=fluid)
                np.copyto(A, ho, where=fluid)
            else:
                B[...] = hi        # a_i(x + c_i) <- h_i(x)
                A[...] = ho
        for r in self._rest:
            Rv = views[r]
            hr = self._relax_into(r, Rv, e1, rho, u, usq, cu, wr, add)
            if fluid is not None:
                np.copyto(Rv, hr, where=fluid)
            else:
                Rv[...] = hr

    # -- ghost handling (single-domain) ----------------------------------
    def fill_ghosts(self) -> None:
        """Post-even ghost fill: periodic wrap or zero-gradient copy."""
        if self.solver.periodic:
            fill_ghosts_periodic(self.solver.fg)
        else:
            fill_ghosts_zero_gradient(self.solver.fg)

    def fold_ghosts(self) -> None:
        """Fold the odd-phase ghost scatter back onto the interior.

        Periodic domains fold onto the wrap image; bounded domains run
        the zero-gradient crossing-slot fold (each face's border layer
        re-reads its inward neighbours, emulating the reference
        solver's ghost-fill-then-pull closure).
        """
        if self.solver.periodic:
            fold_ghosts_periodic(self.lattice, self.solver.fg)
        else:
            fold_ghosts_zero_gradient(self.lattice, self.solver.fg)

    # -- rotated boundary closure ----------------------------------------
    def apply_boundaries_rotated(self) -> None:
        """Impose the solver's handlers on the rotated mid-pair layout.

        Called by ``post_stream`` after even phases (canonical handlers
        would corrupt the rotated storage); bit-identical to the
        reference's sequential post-stream application.
        """
        if self._rotated_bc is None:
            from repro.lbm.esoteric import RotatedBoundaryApplicator
            self._rotated_bc = RotatedBoundaryApplicator(self)
        self._rotated_bc.apply()

    # -- whole-step driver ------------------------------------------------
    def step_once(self) -> None:
        """Advance the bound single-domain solver one time step."""
        s = self.solver
        rec = s.counters
        even = (s.time_step & 1) == 0
        live = rec is not None and rec.enabled
        if live:
            rec.add("kernel.aa", 0.0)
        if even:
            if live:
                with rec.phase("aa.even"):
                    self.even_phase(None)
                with rec.phase("aa.ghosts"):
                    self.fill_ghosts()
            else:
                self.even_phase(None)
                self.fill_ghosts()
            s._bounce_folded = True
            s._aa_rotated = True
        else:
            if live:
                with rec.phase("aa.odd"):
                    self.odd_phase(None)
                with rec.phase("aa.fold"):
                    self.fold_ghosts()
            else:
                self.odd_phase(None)
                self.fold_ghosts()
            s._bounce_folded = False
            s._aa_rotated = False
        if live:
            with rec.phase("aa.post_stream"):
                s.post_stream()
        else:
            s.post_stream()

    # -- observables mid-pair ---------------------------------------------
    def reconstruct(self) -> np.ndarray:
        """Canonical interior distributions from the rotated layout.

        Valid at odd parity (after an even phase whose ghosts have been
        filled/exchanged): performs the pending gather plus the
        bounce-back swap into a fresh array, bit-identical to what the
        reference solver holds after the same number of steps.  The
        result is returned read-only — the live state is the rotated
        array, so writes here would be silently lost.
        """
        s = self.solver
        lat = self.lattice
        fg = s.fg
        out = np.empty((lat.Q,) + s.shape, dtype=s.dtype)
        for i in range(lat.Q):
            out[i] = fg[(int(lat.opp[i]),)
                        + self._shift(self._interior, -lat.c[i])]
        if s.solid.any():
            reversed_ = out[lat.opp][:, s.solid]
            out[:, s.solid] = reversed_
        out.setflags(write=False)
        return out


def run_aa_equivalence_check(shape=(24, 20, 4), steps: int = 4,
                             backends=("serial", "processes"),
                             seed: int = 0) -> dict:
    """The ``check-aa`` gate: AA vs reference on the voxelized city.

    Two cases share the city mask:

    * ``periodic`` — the original fully periodic box;
    * ``bounded`` — a non-periodic box driven by an equilibrium-
      velocity inlet at x-low and a zero-gradient outflow at x-high,
      both folded into the in-place sweeps by the rotated closure
      (:mod:`repro.lbm.esoteric`).

    Per case, single-domain: the AA kernel must match the phase-split
    reference bit for bit after every even number of steps, match its
    macroscopic fields (via reconstruction) after *every* step, and
    keep exactly one full distribution array (``_fg_next_buf`` never
    allocated).  Cluster: a uniform-AA 2x2x1 decomposition must
    reproduce the single-domain reference bit for bit on every
    requested backend, at both an odd (reconstructed gather) and even
    step count.  Raises ``AssertionError`` on any violation; returns
    ``{"occupancy", "cases": {case: {"backends": {backend: rows}}}}``.
    """
    from repro.lbm.boundaries import EquilibriumVelocityInlet, OutflowBoundary
    from repro.lbm.lattice import D3Q19
    from repro.lbm.solver import LBMSolver
    from repro.urban.city import times_square_like
    from repro.urban.voxelize import voxelize_city

    solid = voxelize_city(times_square_like(seed=7), shape,
                          resolution_m=24.0, ground_layers=2)
    rng = np.random.default_rng(seed)
    u0 = (0.03 * rng.standard_normal((3,) + tuple(shape))).astype(np.float32)
    u0[:, solid] = 0
    if steps % 2:
        raise ValueError("steps must be even (AA pairs steps)")

    inlet = (0, "low", (0.04, 0.0, 0.0), 1.0)
    outflow = (0, "high")

    def bounded_bcs():
        return [EquilibriumVelocityInlet(D3Q19, *inlet),
                OutflowBoundary(D3Q19, *outflow)]

    cases = {
        "periodic": {"solver": {"periodic": True},
                     "cluster": {}},
        "bounded": {"solver": {"periodic": False,
                               "boundaries": bounded_bcs},
                    "cluster": {"periodic": (False, False, False),
                                "inlet": inlet, "outflow": outflow}},
    }

    def make(kernel, kwargs):
        kw = dict(kwargs)
        bcs = kw.pop("boundaries", None)
        s = LBMSolver(shape, tau=0.7, solid=solid, kernel=kernel,
                      boundaries=bcs() if bcs else (), **kw)
        s.initialize(rho=np.ones(shape, np.float32), u=u0.copy())
        return s

    from repro.core.cluster_lbm import ClusterConfig, CPUClusterLBM

    report: dict = {"occupancy": float(solid.mean()), "cases": {}}
    for case, spec in cases.items():
        aa = make("aa", spec["solver"])
        ref = make("split", spec["solver"])
        for t in range(steps):
            aa.step(1)
            ref.step(1)
            rho_a, u_a = aa.macroscopic()
            rho_r, u_r = ref.macroscopic()
            assert np.array_equal(rho_a, rho_r), (
                f"{case}: rho diverged at step {t + 1}")
            assert np.array_equal(u_a, u_r), (
                f"{case}: u diverged at step {t + 1}")
            assert np.array_equal(aa.f, ref.f), (
                f"{case}: distributions diverged at step {t + 1}")
        assert aa.kernel_used == "aa"
        # Working-set contract: one distribution array, no spare
        # buffer — on the bounded case too (the rotated closure folds
        # the handlers without materialising a canonical copy).
        assert aa._fg_next_buf is None, (
            f"{case}: AA kernel allocated a second buffer")

        ref2 = make("split", spec["solver"])
        f0 = ref2.f.copy()
        odd_steps = steps - 1
        ref2.step(odd_steps)
        f_odd = ref2.f.copy()
        ref2.step(1)
        f_even = ref2.f.copy()
        sub = (shape[0] // 2, shape[1] // 2, shape[2])
        case_report: dict = {"backends": {}}
        for backend in backends:
            cfg = ClusterConfig(sub_shape=sub, arrangement=(2, 2, 1),
                                tau=0.7, solid=solid, backend=backend,
                                kernel="aa", **spec["cluster"])
            with CPUClusterLBM(cfg) as cluster:
                cluster.load_global_distributions(f0)
                cluster.step(odd_steps)
                got_odd = cluster.gather_distributions().copy()
                cluster.step(1)
                got_even = cluster.gather_distributions().copy()
                rows = cluster.kernel_report()
            assert np.array_equal(got_odd, f_odd), (
                f"{case}/{backend}: AA cluster diverged at odd step "
                f"{odd_steps}")
            assert np.array_equal(got_even, f_even), (
                f"{case}/{backend}: AA cluster diverged at step {steps}")
            kinds = {r["kernel"] for r in rows}
            assert kinds == {"aa"}, (
                f"{case}/{backend}: expected uniform AA, got {kinds}")
            for row in rows:
                row["case"] = case
            case_report["backends"][backend] = rows
        report["cases"][case] = case_report
    return report
