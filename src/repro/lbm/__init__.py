"""Lattice Boltzmann numerics.

This package implements the flow model used by the paper (Sec 4.1):
the D3Q19 BGK lattice Boltzmann method, the Multiple-Relaxation-Time
(MRT) variant, and the hybrid thermal LBM, together with streaming,
boundary conditions (including interpolated curved boundaries), tracer
particle dispersion, and a single-domain reference solver that the
distributed GPU-cluster implementation is validated against.

All kernels are vectorized numpy operating on arrays of shape
``(Q, nx, ny, nz)`` (distributions) and ``(D, nx, ny, nz)`` (vector
fields).  ``float32`` is the default dtype to mirror the single
precision of the GeForce FX fragment pipeline.
"""

from repro.lbm.lattice import D2Q9, D3Q19, Lattice
from repro.lbm.equilibrium import equilibrium
from repro.lbm.macroscopic import macroscopic, density, momentum
from repro.lbm.collision import BGKCollision, viscosity_to_tau, tau_to_viscosity
from repro.lbm.aa import AAStepKernel
from repro.lbm.autotune import KernelChoice, choose_kernel, clear_autotune_cache
from repro.lbm.fused import FusedStepKernel
from repro.lbm.sparse import SparseStepKernel
from repro.lbm.mrt import MRTCollision, mrt_matrix
from repro.lbm.streaming import pull_slice_table, stream_periodic, stream_pull
from repro.lbm.boundaries import (
    BounceBackNodes,
    BouzidiCurvedBoundary,
    EquilibriumVelocityInlet,
    OutflowBoundary,
    box_walls,
)
from repro.lbm.solver import LBMSolver
from repro.lbm.thermal import HybridThermalLBM
from repro.lbm.tracers import TracerCloud
from repro.lbm.les import SmagorinskyBGK
from repro.lbm.zou_he import ZouHePressure2D, ZouHeVelocity2D

__all__ = [
    "Lattice",
    "D2Q9",
    "D3Q19",
    "equilibrium",
    "macroscopic",
    "density",
    "momentum",
    "BGKCollision",
    "MRTCollision",
    "mrt_matrix",
    "viscosity_to_tau",
    "tau_to_viscosity",
    "stream_periodic",
    "stream_pull",
    "pull_slice_table",
    "AAStepKernel",
    "KernelChoice",
    "choose_kernel",
    "clear_autotune_cache",
    "FusedStepKernel",
    "SparseStepKernel",
    "BounceBackNodes",
    "BouzidiCurvedBoundary",
    "EquilibriumVelocityInlet",
    "OutflowBoundary",
    "box_walls",
    "LBMSolver",
    "HybridThermalLBM",
    "TracerCloud",
    "ZouHeVelocity2D",
    "ZouHePressure2D",
    "SmagorinskyBGK",
]
