"""Sec 5: the Times Square dispersion run.

Headline: "The LBM flow model runs at 0.31 second/step on the GPU
cluster" — 480x400x80 lattice on 30 nodes (6x5 arrangement of 80^3
sub-domains), city model of 91 blocks / ~850 buildings at 3.8 m
resolution.  Also runs a small *numeric* dispersion end to end.
"""

import numpy as np
from conftest import fmt_row

from repro.urban import DispersionScenario, times_square_like


def test_paper_scale_step_time(benchmark, report):
    scenario = DispersionScenario(shape=(480, 400, 80))

    def run():
        cluster = scenario.make_cluster((6, 5, 1), timing_only=True)
        return cluster.step()

    t = benchmark.pedantic(run, rounds=1, iterations=1)
    m = t.ms()
    report("Sec 5 — 480x400x80 on 30 GPU nodes", [
        fmt_row("compute", "GPU<->CPU", "net", "non-ovl", "total",
                widths=[9, 10, 7, 8, 8]),
        fmt_row(m["compute"], m["agp"], m["net_total"], m["net_nonoverlap"],
                m["total"], widths=[9, 10, 7, 8, 8]),
        "paper: 0.31 s/step; '20 minutes' to the 1000-step spin-up "
        f"(simulated: {t.total_s * 1000 / 60:.1f} min)",
    ])
    assert abs(t.total_s - 0.31) / 0.31 < 0.05
    # The 1000-step spin-up lands near the paper's "less than 20 minutes".
    assert t.total_s * 1000 / 60 < 20.0


def test_city_statistics(benchmark, report):
    city = benchmark.pedantic(times_square_like, rounds=1, iterations=1)
    stats = city.height_stats()
    report("Sec 5 — synthetic Times-Square-like city", [
        f"blocks: {city.n_blocks} (paper: 91)",
        f"buildings: {city.n_buildings} (paper: ~850)",
        f"area: {city.extent_m[0] / 1e3:.2f} x {city.extent_m[1] / 1e3:.2f} km"
        " (paper: 1.66 x 1.13)",
        f"heights: mean {stats['mean']:.0f} m, p90 {stats['p90']:.0f} m, "
        f"max {stats['max']:.0f} m",
    ])
    assert city.n_blocks == 91
    assert 780 <= city.n_buildings <= 950


def test_small_numeric_dispersion(benchmark, report):
    """A real (numeric) downscaled dispersion: wind develops, tracers
    drift downwind — measured wall-clock for the whole pipeline."""

    def run():
        sc = DispersionScenario(shape=(40, 32, 10), resolution_m=45.0,
                                wind_speed=0.06, tau=0.65)
        solver = sc.make_single_solver()
        solver.step(40)
        cloud = sc.release_tracers(500)
        start = cloud.center_of_mass().copy()
        for _ in range(20):
            solver.step(1)
            cloud.step(solver.f)
        _, u = solver.macroscopic()
        return (float(u[0][~sc.solid].mean()),
                cloud.center_of_mass() - start)

    mean_ux, drift = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Sec 5 — numeric downscaled dispersion (40x32x10)", [
        f"mean streamwise velocity: {mean_ux:+.4f} (wind from +x)",
        f"20-step plume drift: {np.round(drift, 2)} cells",
    ])
    assert mean_ux < 0            # flow follows the wind
    assert drift[0] < 0.5         # plume does not travel upwind
