"""Fused vs phase-split hot-path benchmark, with a machine-readable log.

Two entry points:

* ``pytest benchmarks/bench_fused.py --benchmark-only`` — the usual
  pytest-benchmark run, printing fused/unfused Mcells/s side by side.
* ``python benchmarks/bench_fused.py [--out BENCH_kernels.json]`` — a
  self-contained timing run that writes ``BENCH_kernels.json`` so the
  kernel-throughput trajectory stays machine-readable across PRs
  (consumed by ``benchmarks/check_regression.py``).

The headline metric mirrors ``bench_kernels.py::test_reference_full_step``:
throughput of one full reference-solver step at 48^3 in Mcells/s, for
both the fused single-pass pipeline and the ``fused=False`` phase-split
escape hatch.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

try:  # allow `python benchmarks/bench_fused.py` without PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

SHAPE = (48, 48, 48)


def _make_solver(fused: bool, shape=SHAPE, solid: bool = False):
    from repro.lbm import LBMSolver
    mask = None
    if solid:
        mask = np.zeros(shape, bool)
        mask[shape[0] // 3:shape[0] // 3 + 4,
             shape[1] // 3:shape[1] // 3 + 4, :] = True
    return LBMSolver(shape, tau=0.7, solid=mask, fused=fused)


def _throughput_mcells(solver, steps: int, repeats: int) -> float:
    """Best-of-``repeats`` Mcells/s over ``steps``-step batches."""
    solver.step(2)  # warm up: allocate workspace, settle caches
    cells = float(np.prod(solver.shape))
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        solver.step(steps)
        best = min(best, (time.perf_counter() - t0) / steps)
    return cells / best / 1e6


def run_benchmarks(shape=SHAPE, steps: int = 8, repeats: int = 3,
                   cluster_backends=None) -> dict:
    """Measure the fused and unfused step pipelines; returns a JSON dict."""
    results: dict[str, dict] = {}
    for name, fused, solid in [
        ("reference_full_step_unfused", False, False),
        ("reference_full_step_fused", True, False),
        ("reference_full_step_fused_solid", True, True),
    ]:
        solver = _make_solver(fused, shape=shape, solid=solid)
        mc = _throughput_mcells(solver, steps, repeats)
        results[name] = {"mcells_per_s": round(mc, 3)}
    results["fused_speedup"] = {
        "ratio": round(results["reference_full_step_fused"]["mcells_per_s"]
                       / results["reference_full_step_unfused"]["mcells_per_s"], 3)
    }
    # Cluster step (2x2x1 numeric mode) so the distributed hot path is
    # tracked too, under every execution backend (bench_procpool).
    from bench_procpool import BACKENDS, comparison_line, run_backend_benchmarks
    backend_results = run_backend_benchmarks(
        repeats=repeats, backends=cluster_backends or BACKENDS)
    results.update(backend_results)
    print(comparison_line(backend_results))
    # Sequential vs executed-overlap protocol (bench_overlap) rides in
    # the same json so check_regression guards it too.
    from bench_overlap import run_overlap_benchmarks
    results.update(run_overlap_benchmarks(repeats=repeats))
    return {
        "schema": "bench-kernels/1",
        "shape": list(shape),
        "steps": steps,
        "repeats": repeats,
        "results": results,
    }


def write_results(data: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=str(Path(__file__).resolve().parent.parent
                                         / "BENCH_kernels.json"),
                    help="output JSON path (default: repo-root BENCH_kernels.json)")
    ap.add_argument("--steps", type=int, default=8)
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--backend", default="all",
                    choices=("all", "serial", "threads", "processes"),
                    help="cluster execution backend(s) to benchmark "
                         "(default: all three; note the committed baseline "
                         "expects all entries present)")
    args = ap.parse_args(argv)
    if args.steps < 1 or args.repeats < 1:
        ap.error("--steps and --repeats must be >= 1")
    backends = None if args.backend == "all" else (args.backend,)
    data = run_benchmarks(steps=args.steps, repeats=args.repeats,
                          cluster_backends=backends)
    path = write_results(data, args.out)
    print(f"wrote {path}")
    for name, entry in sorted(data["results"].items()):
        val = entry.get("mcells_per_s", entry.get("ratio"))
        print(f"  {name:36s} {val}")
    return 0


# -- pytest-benchmark entry points -------------------------------------


def test_reference_full_step_unfused(benchmark):
    solver = _make_solver(fused=False)
    benchmark(lambda: solver.step(1))
    benchmark.extra_info["Mcells/s"] = round(
        np.prod(SHAPE) / benchmark.stats["mean"] / 1e6, 1)


def test_reference_full_step_fused(benchmark):
    solver = _make_solver(fused=True)
    benchmark(lambda: solver.step(1))
    benchmark.extra_info["Mcells/s"] = round(
        np.prod(SHAPE) / benchmark.stats["mean"] / 1e6, 1)


def test_fused_step_with_obstacle(benchmark):
    solver = _make_solver(fused=True, solid=True)
    benchmark(lambda: solver.step(1))


def test_cluster_threaded_step(benchmark):
    from repro.core import ClusterConfig, GPUClusterLBM
    cfg = ClusterConfig(sub_shape=(16, 16, 16), arrangement=(2, 2, 1),
                        tau=0.7, backend="threads", max_workers=4)
    with GPUClusterLBM(cfg) as cluster:
        benchmark(lambda: cluster.step(1))


if __name__ == "__main__":
    raise SystemExit(main())
