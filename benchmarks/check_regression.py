"""Kernel-throughput regression guard.

Runs a fresh :mod:`bench_fused` measurement and compares every
``mcells_per_s`` entry against the committed ``BENCH_kernels.json``
baseline.  Exits non-zero if any kernel regressed by more than the
threshold (default 25%), so the guard is a single command::

    PYTHONPATH=src python benchmarks/check_regression.py

Options::

    --baseline PATH   baseline JSON (default: repo-root BENCH_kernels.json)
    --threshold F     allowed fractional drop, e.g. 0.25 (default)
    --update          rewrite the baseline with the fresh numbers and exit 0

The baseline is machine-specific: refresh it with ``--update`` when the
benchmark host changes, and commit the result so the perf trajectory
stays reviewable PR over PR.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # allow `python benchmarks/check_regression.py` without PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(REPO_ROOT / "src"))

from bench_fused import run_benchmarks, write_results  # noqa: E402


def compare(baseline: dict, fresh: dict, threshold: float) -> list[str]:
    """Return a list of regression messages (empty = pass)."""
    failures = []
    base_results = baseline.get("results", {})
    fresh_results = fresh.get("results", {})
    for name, base_entry in sorted(base_results.items()):
        base_v = base_entry.get("mcells_per_s")
        if base_v is None:
            continue  # ratios and other non-throughput entries
        fresh_entry = fresh_results.get(name)
        if fresh_entry is None:
            failures.append(f"{name}: missing from fresh run")
            continue
        fresh_v = fresh_entry["mcells_per_s"]
        drop = (base_v - fresh_v) / base_v if base_v > 0 else 0.0
        status = "FAIL" if drop > threshold else "ok"
        print(f"  {name:36s} base {base_v:9.3f}  fresh {fresh_v:9.3f} "
              f"Mcells/s  ({-drop:+.1%})  {status}")
        if drop > threshold:
            failures.append(
                f"{name}: {base_v:.3f} -> {fresh_v:.3f} Mcells/s "
                f"({drop:.1%} drop > {threshold:.0%} threshold)")
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default=str(REPO_ROOT / "BENCH_kernels.json"))
    ap.add_argument("--threshold", type=float, default=0.25)
    ap.add_argument("--steps", type=int, default=8)
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline instead of comparing")
    args = ap.parse_args(argv)
    if args.steps < 1 or args.repeats < 1:
        ap.error("--steps and --repeats must be >= 1")

    print("measuring fresh kernel throughput ...")
    fresh = run_benchmarks(steps=args.steps, repeats=args.repeats)

    baseline_path = Path(args.baseline)
    if args.update or not baseline_path.exists():
        write_results(fresh, baseline_path)
        print(f"baseline written to {baseline_path}")
        return 0

    baseline = json.loads(baseline_path.read_text())
    print(f"comparing against {baseline_path} "
          f"(threshold {args.threshold:.0%}):")
    failures = compare(baseline, fresh, args.threshold)
    if failures:
        print("\nREGRESSIONS DETECTED:")
        for msg in failures:
            print(f"  - {msg}")
        return 1
    print("no kernel regressions.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
