"""Kernel-throughput regression guard.

Runs a fresh benchmark sweep and compares every ``mcells_per_s`` entry
against the committed ``BENCH_kernels.json`` baseline.  Exits non-zero
if any kernel regressed by more than the threshold (default 25%), so
the guard is a single command::

    PYTHONPATH=src python benchmarks/check_regression.py

Options::

    --baseline PATH   baseline JSON (default: repo-root BENCH_kernels.json)
    --threshold F     allowed fractional drop, e.g. 0.25 (default)
    --suite NAME      which recording suites to run: ``kernels`` (the
                      bench_fused sweep: fused + cluster backends +
                      overlap), ``sparse`` (the urban dense-vs-sparse
                      sweep), ``aa`` (the AA-pattern kernel + autotune
                      overhead sweep), ``trace`` (traced vs untraced
                      cluster stepping), ``balance`` (uniform vs
                      occupancy-weighted cuts on the mixed city
                      domain), ``exchange`` (merged vs per-face halo
                      wire), or ``all`` (default: kernels)
    --update          merge the fresh numbers into the baseline and exit 0

Baseline entries the selected suite did not measure are *skipped*, not
failed: the baseline accumulates entries from several recording suites
(``bench_fused``/``bench_procpool``/``bench_overlap``/``bench_sparse``/
``bench_aa``/``bench_trace``/``bench_balance``/``bench_exchange``),
and a partial run must only guard what it actually re-measured.  Use
``--suite all`` to opt into the full sweep that covers every entry.
``--update`` likewise merges into the existing baseline instead of
overwriting it, so refreshing one suite keeps the others' entries.

The converse is an error: a throughput entry the suite *measured* that
has no baseline key in ``BENCH_kernels.json`` fails the guard with the
missing keys listed (run ``--update`` once to record them) — a stale
baseline must not silently stop guarding new kernels.

The baseline is machine-specific: refresh it with ``--update`` when the
benchmark host changes, and commit the result so the perf trajectory
stays reviewable PR over PR.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # allow `python benchmarks/check_regression.py` without PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(REPO_ROOT / "src"))

SUITES = ("kernels", "sparse", "aa", "trace", "balance", "exchange",
          "telemetry", "all")


def run_suites(suite: str, steps: int, repeats: int) -> dict:
    """Run the selected recording suite(s); returns a bench-kernels dict."""
    results: dict[str, dict] = {}
    meta: dict = {"schema": "bench-kernels/1", "steps": steps,
                  "repeats": repeats}
    if suite in ("kernels", "all"):
        from bench_fused import run_benchmarks
        data = run_benchmarks(steps=steps, repeats=repeats)
        results.update(data["results"])
        meta.update({k: v for k, v in data.items() if k != "results"})
    if suite in ("sparse", "all"):
        from bench_sparse import run_sparse_benchmarks
        results.update(run_sparse_benchmarks(steps=steps, repeats=repeats))
    if suite in ("aa", "all"):
        from bench_aa import run_aa_benchmarks
        results.update(run_aa_benchmarks(steps=steps, repeats=repeats))
    if suite in ("trace", "all"):
        from bench_trace import run_trace_benchmarks
        results.update(run_trace_benchmarks(steps=steps, repeats=repeats))
    if suite in ("balance", "all"):
        from bench_balance import run_balance_benchmarks
        results.update(run_balance_benchmarks(steps=steps, repeats=repeats))
    if suite in ("exchange", "all"):
        from bench_exchange import run_exchange_benchmarks
        results.update(run_exchange_benchmarks(steps=steps, repeats=repeats))
    if suite in ("telemetry", "all"):
        from bench_telemetry import run_telemetry_benchmarks
        results.update(run_telemetry_benchmarks(steps=steps, repeats=repeats))
    meta["results"] = results
    return meta


def compare(baseline: dict, fresh: dict, threshold: float) -> list[str]:
    """Return a list of regression messages (empty = pass).

    Only the *intersection* of baseline and fresh entries is compared;
    baseline entries the fresh run did not measure are reported as
    skipped (other suites own them), never failed.  Fresh throughput
    entries with *no* baseline key fail with the missing keys listed
    (``--update`` records them) — never with a raw ``KeyError``.
    """
    failures = []
    skipped = []
    base_results = baseline.get("results", {})
    fresh_results = fresh.get("results", {})
    for name, base_entry in sorted(base_results.items()):
        base_v = base_entry.get("mcells_per_s")
        if base_v is None:
            continue  # ratios and other non-throughput entries
        fresh_entry = fresh_results.get(name)
        if fresh_entry is None:
            skipped.append(name)
            continue
        fresh_v = fresh_entry.get("mcells_per_s")
        if fresh_v is None:
            failures.append(
                f"{name}: fresh run recorded no 'mcells_per_s' (got keys "
                f"{sorted(fresh_entry)})")
            continue
        drop = (base_v - fresh_v) / base_v if base_v > 0 else 0.0
        status = "FAIL" if drop > threshold else "ok"
        print(f"  {name:36s} base {base_v:9.3f}  fresh {fresh_v:9.3f} "
              f"Mcells/s  ({-drop:+.1%})  {status}")
        if drop > threshold:
            failures.append(
                f"{name}: {base_v:.3f} -> {fresh_v:.3f} Mcells/s "
                f"({drop:.1%} drop > {threshold:.0%} threshold)")
    missing = [name for name in sorted(set(fresh_results) - set(base_results))
               if fresh_results[name].get("mcells_per_s") is not None]
    if missing:
        print(f"  missing baseline keys: {', '.join(missing)}")
        failures.append(
            f"baseline has no entry for measured kernel(s): "
            f"{', '.join(missing)} — run with --update to record them")
    if skipped:
        print(f"  skipped (not measured by this suite): {', '.join(skipped)}")
    return failures


def merge_baseline(baseline_path: Path, fresh: dict) -> None:
    """Fold the fresh entries into the baseline file (create if absent)."""
    if baseline_path.exists():
        data = json.loads(baseline_path.read_text())
        data.setdefault("results", {}).update(fresh.get("results", {}))
        for key, value in fresh.items():
            if key != "results":
                data[key] = value
    else:
        data = fresh
    baseline_path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default=str(REPO_ROOT / "BENCH_kernels.json"))
    ap.add_argument("--threshold", type=float, default=0.25)
    ap.add_argument("--steps", type=int, default=8)
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--suite", default="kernels", choices=SUITES,
                    help="recording suites to run (default: kernels; "
                         "'all' covers every baseline entry)")
    ap.add_argument("--update", action="store_true",
                    help="merge fresh numbers into the baseline "
                         "instead of comparing")
    args = ap.parse_args(argv)
    if args.steps < 1 or args.repeats < 1:
        ap.error("--steps and --repeats must be >= 1")

    print(f"measuring fresh kernel throughput (suite: {args.suite}) ...")
    fresh = run_suites(args.suite, steps=args.steps, repeats=args.repeats)

    baseline_path = Path(args.baseline)
    if args.update or not baseline_path.exists():
        merge_baseline(baseline_path, fresh)
        print(f"baseline updated at {baseline_path}")
        return 0

    baseline = json.loads(baseline_path.read_text())
    print(f"comparing against {baseline_path} "
          f"(threshold {args.threshold:.0%}):")
    failures = compare(baseline, fresh, args.threshold)
    if failures:
        print("\nREGRESSIONS DETECTED:")
        for msg in failures:
            print(f"  - {msg}")
        return 1
    print("no kernel regressions.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
