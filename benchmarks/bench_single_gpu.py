"""Sec 4.2 single-GPU results: the ~8x speedup of the GeForce FX over a
P4 2.53 GHz software LBM, and the 92^3 maximum lattice inside the
FX 5800 Ultra's usable texture memory (Sec 2).
"""

import numpy as np
from conftest import fmt_row

from repro.gpu.device import SimulatedGPU
from repro.gpu.lbm_gpu import GPULBMSolver
from repro.gpu.packing import PACKED_BYTES_PER_CELL, max_cubic_lattice
from repro.gpu.specs import (GEFORCE_6800_ULTRA, GEFORCE_FX_5800_ULTRA,
                             GEFORCE_FX_5900_ULTRA, PENTIUM4_2_53, XEON_2_4)
from repro.perf import calibration as cal


def _speedup_table():
    gpu_ns = cal.lbm_step_compute_ns_per_cell()
    rows = []
    for gpu in (GEFORCE_FX_5800_ULTRA, GEFORCE_FX_5900_ULTRA,
                GEFORCE_6800_ULTRA):
        ns = gpu_ns / gpu.lbm_throughput_scale
        rows.append((gpu.name, ns,
                     PENTIUM4_2_53.lbm_ns_per_cell / ns,
                     XEON_2_4.lbm_ns_per_cell / ns))
    return rows


def test_single_gpu_speedup(benchmark, report):
    rows = benchmark.pedantic(_speedup_table, rounds=1, iterations=1)
    lines = [fmt_row("card", "ns/cell", "vs P4 2.53", "vs Xeon 2.4",
                     widths=[26, 9, 11, 12])]
    for name, ns, vs_p4, vs_xeon in rows:
        lines.append(fmt_row(name, ns, vs_p4, vs_xeon,
                             widths=[26, 9, 11, 12]))
    lines.append("paper: FX 5900 Ultra ~8x a P4 2.53 GHz (no SSE); "
                 "6800 Ultra 'at least 2.5x' the 5800 Ultra")
    report("Sec 4.2 — single-GPU vs software LBM", lines)
    by_name = {r[0]: r for r in rows}
    assert abs(by_name["GeForce FX 5900 Ultra"][2] - 8.0) < 0.2
    assert (by_name["GeForce 6800 Ultra"][2]
            == 2.5 * by_name["GeForce FX 5800 Ultra"][2])


def test_max_lattice_92_cubed(benchmark, report):
    n = benchmark.pedantic(
        max_cubic_lattice, args=(GEFORCE_FX_5800_ULTRA.usable_lattice_bytes,),
        rounds=1, iterations=1)
    used = n ** 3 * PACKED_BYTES_PER_CELL / 1e6
    report("Sec 2 — texture-memory ceiling", [
        f"packed layout: {PACKED_BYTES_PER_CELL} B/cell "
        "(5 distribution stacks + macro + pbuffer, RGBA float32)",
        f"usable budget: "
        f"{GEFORCE_FX_5800_ULTRA.usable_lattice_bytes / 1e6:.1f} MB "
        "('at most 86MB' measured by the paper)",
        f"maximum cubic lattice: {n}^3 ({used:.1f} MB)   paper: 92^3",
    ])
    assert n == 92


def test_real_texture_step_wall_time(benchmark, report):
    """Honest wall-clock measurement of the simulated texture path (one
    32^3 step through all fragment passes) — the substrate's own cost,
    not a paper number."""
    solid = np.zeros((32, 32, 32), bool)
    solid[8:12, 8:12, :8] = True
    dev = SimulatedGPU(enforce_memory=False)
    solver = GPULBMSolver((32, 32, 32), tau=0.7, device=dev, solid=solid)

    def step():
        solver.step(1)

    benchmark(step)
    report("Substrate — simulated-GPU texture step (32^3, wall clock)", [
        f"modeled device time/step: "
        f"{dev.clock_s / max(1, solver.time_step) * 1e3:.2f} ms "
        "(the simulated FX 5800 Ultra clock)",
    ])
