"""Telemetry-overhead benchmark: monitored vs unmonitored stepping.

The telemetry subsystem (:mod:`repro.perf.telemetry`) makes the same
cost promise as tracing: a disabled registry is a strict no-op (the
record calls stay in the hot paths permanently), and an *enabled*
session — registry, per-step histograms, health bookkeeping — observes
without meaningfully slowing the step.  This suite measures both on
the serial cluster backend and records, into ``BENCH_kernels.json``,

* ``cluster_step_unmonitored`` — Mcells/s with the default
  ``NULL_REGISTRY`` (the shipping configuration; the entry also logs
  the measured disabled *record* cost in ns/call),
* ``cluster_step_monitored`` — Mcells/s with a full
  :class:`~repro.perf.telemetry.TelemetrySession` attached (counters,
  step histograms, imbalance gauges, health rows every step),
* ``telemetry_overhead`` — unmonitored-over-monitored ratio (>= 1
  means telemetry costs something),

so ``check_regression.py --suite telemetry`` guards the unmonitored
entry like any other throughput number and the monitored entry
documents the observation cost trajectory PR over PR.

Entry points:

* ``python benchmarks/bench_telemetry.py`` — print the comparison and
  merge the entries into the repo-root ``BENCH_kernels.json``.
* :func:`run_telemetry_benchmarks` — called by the regression guard's
  ``--suite telemetry`` / ``--suite all`` sweeps.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:  # allow `python benchmarks/bench_telemetry.py` without PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

SUB_SHAPE = (24, 24, 12)
ARRANGEMENT = (2, 1, 1)


def _make_cluster():
    from repro.core.cluster_lbm import ClusterConfig, CPUClusterLBM
    cfg = ClusterConfig(sub_shape=SUB_SHAPE, arrangement=ARRANGEMENT,
                        tau=0.7, backend="serial")
    return CPUClusterLBM(cfg)


def _step_throughput(cluster, steps: int, repeats: int,
                     monitored: bool) -> float:
    """Best-of-``repeats`` Mcells/s; fresh registry state per repeat."""
    session = cluster.enable_telemetry() if monitored else None
    cluster.step(2)  # warm up kernels and the exchange schedule
    cells = float(cluster.cells_total())
    best = float("inf")
    for _ in range(repeats):
        if session is not None:
            session.registry.snapshot(reset=True)
        t0 = time.perf_counter()
        cluster.step(steps)
        best = min(best, (time.perf_counter() - t0) / steps)
    return cells / best / 1e6


def run_telemetry_benchmarks(steps: int = 8, repeats: int = 3) -> dict:
    """Measure monitored vs unmonitored cluster stepping; bench entries."""
    from repro.perf.telemetry import disabled_record_overhead_ns

    mc = {}
    for kind, monitored in (("unmonitored", False), ("monitored", True)):
        with _make_cluster() as cluster:
            mc[kind] = _step_throughput(cluster, steps, repeats, monitored)
    noop = disabled_record_overhead_ns()
    noop_ns = max(noop.values())
    return {
        "cluster_step_unmonitored": {
            "mcells_per_s": round(mc["unmonitored"], 3),
            "noop_record_ns": round(noop_ns, 1)},
        "cluster_step_monitored": {"mcells_per_s": round(mc["monitored"], 3)},
        "telemetry_overhead": {
            "ratio": round(mc["unmonitored"] / mc["monitored"], 3)},
    }


def comparison_lines(results: dict) -> str:
    un = results["cluster_step_unmonitored"]
    mo = results["cluster_step_monitored"]
    ratio = results["telemetry_overhead"]["ratio"]
    return (f"  unmonitored {un['mcells_per_s']:7.3f} | monitored "
            f"{mo['mcells_per_s']:7.3f} Mcells/s  "
            f"(unmonitored/monitored {ratio:.2f}x, disabled record "
            f"{un['noop_record_ns']:.0f} ns/call)")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=str(Path(__file__).resolve().parent.parent
                                         / "BENCH_kernels.json"),
                    help="BENCH json to merge the entries into (if it exists)")
    ap.add_argument("--steps", type=int, default=8)
    ap.add_argument("--repeats", type=int, default=3)
    args = ap.parse_args(argv)
    if args.steps < 1 or args.repeats < 1:
        ap.error("--steps and --repeats must be >= 1")
    results = run_telemetry_benchmarks(steps=args.steps, repeats=args.repeats)
    for name, entry in sorted(results.items()):
        val = entry.get("mcells_per_s", entry.get("ratio"))
        print(f"  {name:36s} {val}")
    print(comparison_lines(results))
    out = Path(args.out)
    if out.exists():
        data = json.loads(out.read_text())
        data.setdefault("results", {}).update(results)
        out.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        print(f"merged into {out}")
    return 0


# -- pytest-benchmark entry points -------------------------------------


def test_cluster_step_unmonitored(benchmark):
    with _make_cluster() as cluster:
        cluster.step(1)
        benchmark(lambda: cluster.step(1))


def test_cluster_step_monitored(benchmark):
    with _make_cluster() as cluster:
        cluster.enable_telemetry()
        cluster.step(1)
        benchmark(lambda: cluster.step(1))


if __name__ == "__main__":
    raise SystemExit(main())
