"""Merged vs per-face halo-wire benchmark.

Measures the same numeric multi-node step under both wire protocols —
``ClusterConfig.wire="merged"`` (one message per neighbor per exchange
phase, five streaming links over the full padded cross-section in one
contiguous buffer) and ``wire="perface"`` (the legacy full-face wire)
— and records the throughput, the measured exchange-phase time, the
per-step message counts, and the modeled network time the switch
assigns to each envelope pattern.

Entry points:

* ``python benchmarks/bench_exchange.py`` — print the comparison and
  merge the entries into the repo-root ``BENCH_kernels.json`` if it
  exists.
* :func:`run_exchange_benchmarks` — called by
  ``check_regression.py --suite exchange`` so the merged wire is
  regression-guarded like any other kernel.

Both wires are bit-identical (pinned by ``tests/test_exchange.py`` and
``python -m repro check-exchange``); only the envelope count and the
packing path differ.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:  # allow `python benchmarks/bench_exchange.py` without PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

# Large enough that the 5-link merged pack vs the 19-link legacy ghost
# copy moves real memory; small enough for the regression-guard budget.
SUB_SHAPE = (24, 24, 24)
ARRANGEMENT = (2, 2, 1)
WIRES = ("merged", "perface")
ENTRY_NAMES = {"merged": "exchange_merged", "perface": "exchange_perface"}


def measure_wire(wire: str, sub_shape=SUB_SHAPE, arrangement=ARRANGEMENT,
                 steps: int = 2, repeats: int = 3) -> dict:
    """Throughput + exchange-phase time of one wire protocol."""
    from repro.core import ClusterConfig, CPUClusterLBM

    cfg = ClusterConfig(sub_shape=sub_shape, arrangement=arrangement,
                        tau=0.7, backend="serial", wire=wire)
    with CPUClusterLBM(cfg) as cluster:
        cluster.step(1)  # warm up wire buffers / plans
        cluster.counters.reset()
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            cluster.step(steps)
            best = min(best, (time.perf_counter() - t0) / steps)
        cells = cluster.cells_total()
        exch = cluster.counters.stats.get("cluster.exchange")
        msgs = cluster.counters.stats.get("comm.msgs")
    return {
        "mcells_per_s": cells / best / 1e6,
        "exchange_ms_per_step": (exch.seconds / exch.calls * 1e3
                                 if exch and exch.calls else 0.0),
        "msgs_per_step": (msgs.value / msgs.calls
                          if msgs and msgs.calls else None),
    }


def modeled_net_ms(wire: str, sub_shape=SUB_SHAPE,
                   arrangement=ARRANGEMENT) -> float:
    """Switch-modeled exchange-phase milliseconds for one wire."""
    from repro.core.decomposition import BlockDecomposition
    from repro.core.halo import HaloPlan
    from repro.core.schedule import CommSchedule
    from repro.net.switch import GigabitSwitch

    shape = tuple(s * a for s, a in zip(sub_shape, arrangement))
    decomp = BlockDecomposition(shape, arrangement,
                                periodic=(True, True, True))
    schedule = CommSchedule(decomp, HaloPlan(sub_shape), wire=wire)
    sw = GigabitSwitch()
    return sw.phase_time(schedule.round_bytes(), decomp.n_nodes,
                         round_messages=schedule.round_messages()) * 1e3


def run_exchange_benchmarks(sub_shape=SUB_SHAPE, arrangement=ARRANGEMENT,
                            steps: int = 2, repeats: int = 3) -> dict:
    """Measure both wires; returns bench-kernels result entries."""
    results: dict[str, dict] = {}
    measured: dict[str, dict] = {}
    for wire in WIRES:
        m = measure_wire(wire, sub_shape=sub_shape, arrangement=arrangement,
                         steps=steps, repeats=repeats)
        measured[wire] = m
        entry = {"mcells_per_s": round(m["mcells_per_s"], 3),
                 "exchange_ms_per_step": round(m["exchange_ms_per_step"], 4)}
        if m["msgs_per_step"] is not None:
            entry["msgs_per_step"] = round(m["msgs_per_step"], 1)
        results[ENTRY_NAMES[wire]] = entry
    merged_ms = measured["merged"]["exchange_ms_per_step"]
    perface_ms = measured["perface"]["exchange_ms_per_step"]
    results["exchange_merged_vs_perface"] = {
        "exchange_speedup": round(perface_ms / merged_ms, 3)
        if merged_ms > 0 else None,
        "step_speedup": round(measured["merged"]["mcells_per_s"]
                              / measured["perface"]["mcells_per_s"], 3),
        "modeled_net_ms_merged": round(modeled_net_ms("merged", sub_shape,
                                                      arrangement), 4),
        "modeled_net_ms_perface": round(modeled_net_ms("perface", sub_shape,
                                                       arrangement), 4),
    }
    return results


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=str(Path(__file__).resolve().parent.parent
                                         / "BENCH_kernels.json"),
                    help="BENCH json to merge the entries into (if it exists)")
    ap.add_argument("--steps", type=int, default=2)
    ap.add_argument("--repeats", type=int, default=3)
    args = ap.parse_args(argv)
    if args.steps < 1 or args.repeats < 1:
        ap.error("--steps and --repeats must be >= 1")
    results = run_exchange_benchmarks(steps=args.steps, repeats=args.repeats)
    for name, entry in sorted(results.items()):
        print(f"  {name:36s} {json.dumps(entry)}")
    cmp_ = results["exchange_merged_vs_perface"]
    print(f"exchange time merged vs per-face: "
          f"{cmp_['exchange_speedup']}x faster "
          f"(modeled net {cmp_['modeled_net_ms_merged']:.3f} vs "
          f"{cmp_['modeled_net_ms_perface']:.3f} ms)")
    out = Path(args.out)
    if out.exists():
        data = json.loads(out.read_text())
        data.setdefault("results", {}).update(results)
        out.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        print(f"merged into {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
