"""Load-balance benchmark: uniform vs occupancy-weighted cuts.

Runs the check-balance gate's mixed dense/sparse voxelized-city domain
(city on the low-x half, open terrain downstream) on the serial
backend under the paper's equal boxes and under the occupancy-weighted
cuts, and records, into ``BENCH_kernels.json``,

* ``cluster_imbalance_uniform`` — Mcells/s and the measured busy-time
  max/mean imbalance under equal boxes (the paper's Sec-4.3 static
  decomposition),
* ``cluster_imbalance_weighted`` — the same under occupancy-weighted
  cuts (``decomposition="weighted"``),
* ``balance_speedup`` — weighted-over-uniform step-time ratio (> 1
  means the weighted cuts paid off end to end),

so ``check_regression.py --suite balance`` guards both throughput
entries like any other kernel number and the imbalance/speedup entries
document the load-balance trajectory PR over PR.  The *closed-loop*
(trace-driven rebalance) variant is exercised by the hard gate
``python -m repro check-balance`` rather than benchmarked here: its
iteration count depends on measured timings.

Entry points:

* ``python benchmarks/bench_balance.py`` — print the comparison and
  merge the entries into the repo-root ``BENCH_kernels.json``.
* :func:`run_balance_benchmarks` — called by the regression guard's
  ``--suite balance`` sweep.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:  # allow `python benchmarks/bench_balance.py` without PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

SHAPE = (96, 40, 4)
ARRANGEMENT = (4, 1, 1)


def _make_cluster(decomposition: str):
    from repro.core.balance import _city_half_domain
    from repro.core.cluster_lbm import ClusterConfig, CPUClusterLBM

    cfg = ClusterConfig(
        sub_shape=tuple(s // a for s, a in zip(SHAPE, ARRANGEMENT)),
        arrangement=ARRANGEMENT, tau=0.7, solid=_city_half_domain(SHAPE),
        backend="serial", autotune="heuristic", decomposition=decomposition)
    return CPUClusterLBM(cfg)


def _measure(decomposition: str, steps: int, repeats: int) -> dict:
    """Best-of-``repeats`` step throughput plus measured imbalance."""
    from repro.perf.report import trace_imbalance_rows

    with _make_cluster(decomposition) as cluster:
        cluster.step(2)  # warm up kernels and the exchange schedule
        cells = float(cluster.cells_total())
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            cluster.step(steps)
            best = min(best, (time.perf_counter() - t0) / steps)
        # Separate traced pass: the imbalance comes from thread-CPU busy
        # times, so the throughput numbers above stay untraced.
        cluster.enable_tracing()
        cluster.step(steps)
        _, summary = trace_imbalance_rows(cluster.tracer)
    return {"mcells_per_s": round(cells / best / 1e6, 3),
            "imbalance": round(float(summary["max_over_mean"]), 3)}


def run_balance_benchmarks(steps: int = 8, repeats: int = 3) -> dict:
    """Measure uniform vs weighted cuts; bench entries."""
    uniform = _measure("uniform", steps, repeats)
    weighted = _measure("weighted", steps, repeats)
    speedup = weighted["mcells_per_s"] / uniform["mcells_per_s"]
    return {
        "cluster_imbalance_uniform": uniform,
        "cluster_imbalance_weighted": weighted,
        "balance_speedup": {"ratio": round(speedup, 3)},
    }


def comparison_lines(results: dict) -> str:
    un = results["cluster_imbalance_uniform"]
    we = results["cluster_imbalance_weighted"]
    ratio = results["balance_speedup"]["ratio"]
    return (f"  uniform {un['mcells_per_s']:7.3f} Mcells/s "
            f"(imbalance {un['imbalance']:.2f}) | weighted "
            f"{we['mcells_per_s']:7.3f} Mcells/s "
            f"(imbalance {we['imbalance']:.2f})  "
            f"weighted/uniform {ratio:.2f}x")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=str(Path(__file__).resolve().parent.parent
                                         / "BENCH_kernels.json"),
                    help="BENCH json to merge the entries into (if it exists)")
    ap.add_argument("--steps", type=int, default=8)
    ap.add_argument("--repeats", type=int, default=3)
    args = ap.parse_args(argv)
    if args.steps < 1 or args.repeats < 1:
        ap.error("--steps and --repeats must be >= 1")
    results = run_balance_benchmarks(steps=args.steps, repeats=args.repeats)
    print(comparison_lines(results))
    out = Path(args.out)
    if out.exists():
        data = json.loads(out.read_text())
        data.setdefault("results", {}).update(results)
        out.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        print(f"merged into {out}")
    return 0


# -- pytest-benchmark entry points -------------------------------------


def test_cluster_step_uniform_cuts(benchmark):
    with _make_cluster("uniform") as cluster:
        cluster.step(1)
        benchmark(lambda: cluster.step(1))


def test_cluster_step_weighted_cuts(benchmark):
    with _make_cluster("weighted") as cluster:
        cluster.step(1)
        benchmark(lambda: cluster.step(1))


if __name__ == "__main__":
    raise SystemExit(main())
