"""Sec 4.4 'three enhancements' + the sub-domain shape design argument.

"(1) Using a faster network, such as Myrinet.  (2) Using the
PCI-Express bus ... (3) Using GPUs with larger texture memories."
Sec 4.3: cube-shaped sub-domains minimise boundary-surface to volume.
"""

from conftest import fmt_row

from repro.perf.whatif import enhancement_speedups, subdomain_shape_study


def test_three_enhancements(benchmark, report):
    speedups = benchmark.pedantic(enhancement_speedups, rounds=1,
                                  iterations=1)
    lines = [f"  {label:<40s} {value:5.2f}x"
             for label, value in speedups.items()]
    lines.append("  (single-node ceiling: 6.64x)")
    report("Sec 4.4 — what-if enhancements at 32 nodes", lines)
    base = speedups["baseline (GbE + AGP 8x + 128MB)"]
    others = [v for k, v in speedups.items() if k != "baseline (GbE + AGP 8x + 128MB)"]
    assert all(v > base for v in others)
    assert max(speedups.values()) == speedups["all three"] < 6.64


def test_subdomain_shape(benchmark, report):
    rows = benchmark.pedantic(subdomain_shape_study, rounds=1, iterations=1)
    lines = [fmt_row("sub-domain", "surf/vol", "net ms", "total ms",
                     widths=[16, 9, 8, 9])]
    for r in rows:
        lines.append(fmt_row(str(r["sub_shape"]), r["surface_to_volume"],
                             r["net_total_ms"], r["total_ms"],
                             widths=[16, 9, 8, 9]))
    report("Sec 4.3 — sub-domain shape at equal volume (3D arrangement)",
           lines)
    assert rows[0]["total_ms"] == min(r["total_ms"] for r in rows)
    s2v = [r["surface_to_volume"] for r in rows]
    net = [r["net_total_ms"] for r in rows]
    assert sorted(range(len(s2v)), key=s2v.__getitem__) == \
        sorted(range(len(net)), key=net.__getitem__)
