"""Figure 8: network communication time vs node count, split into the
part overlapped with the ~120 ms inner-cell collision window and the
non-overlapping remainder (Sec 4.4).

Reproduction target (shape): total network time grows from ~38 ms to
~90 ms through 24 nodes (all of it hidden under the window), then jumps
at 28+ nodes, spilling a 10-45 ms remainder.
"""

from conftest import fmt_row

from repro.perf.model import PAPER_NODE_COUNTS, PAPER_TABLE1, cluster_timings

WIDTHS = [5, 11, 11, 12, 11]


def _series():
    rows = []
    for n in PAPER_NODE_COUNTS[1:]:
        gpu, _ = cluster_timings(n)
        rows.append({
            "nodes": n,
            "total_ms": gpu.net_total_s * 1e3,
            "window_ms": gpu.overlap_window_s * 1e3,
            "overlapped_ms": min(gpu.net_total_s, gpu.overlap_window_s) * 1e3,
            "remainder_ms": gpu.net_nonoverlap_s * 1e3,
        })
    return rows


def test_fig8_network_overlap(benchmark, report):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    lines = [fmt_row("nodes", "net total", "overlapped", "remainder",
                     "paper tot", widths=WIDTHS)]
    for r in rows:
        lines.append(fmt_row(r["nodes"], r["total_ms"], r["overlapped_ms"],
                             r["remainder_ms"], PAPER_TABLE1[r["nodes"]][3],
                             widths=WIDTHS))
    bar = [f"  {r['nodes']:>2} | " + "#" * int(r["overlapped_ms"] / 3)
           + "!" * int(round(r["remainder_ms"] / 3)) for r in rows]
    report("Figure 8 — network time (ms): '#' overlapped, '!' remainder",
           lines + [""] + bar)

    by_n = {r["nodes"]: r for r in rows}
    # Fully hidden through 24 nodes; remainder appears at 28+.
    for n in (2, 4, 8, 12, 16, 20, 24):
        assert by_n[n]["remainder_ms"] == 0.0
    assert by_n[28]["remainder_ms"] > 5
    assert by_n[30]["remainder_ms"] > by_n[28]["remainder_ms"]
    assert by_n[32]["remainder_ms"] > by_n[30]["remainder_ms"]
    # Totals track the published column within 15%.
    for n, r in by_n.items():
        assert abs(r["total_ms"] - PAPER_TABLE1[n][3]) / PAPER_TABLE1[n][3] < 0.15
