"""AA-pattern kernel + measured-autotune overhead benchmark.

The swap-free AA kernel (:mod:`repro.lbm.aa`) halves the streaming
working set by keeping a single distribution array; its payoff shows
on the dense reference case once the double-buffered fused sweep no
longer fits in cache.  This suite records, on the 64^3 dense domain,

* ``reference_full_step_aa`` — the AA kernel's Mcells/s,
* ``aa_speedup`` — AA over the fused double-buffered kernel, measured
  in the same run (the acceptance floor is 1.2x),
* ``autotune_overhead`` — the measured autotuner's one-off probe cost
  (:func:`repro.lbm.autotune.choose_kernel` on a cold cache) as a
  fraction of a 100-step run at the chosen kernel (< 5%),
* ``dispersion_step_split`` / ``dispersion_step_inplace`` — the
  bounded urban-dispersion case (voxelized city, equilibrium inlet,
  zero-gradient outflow) on the split reference pipeline vs the
  in-place AA kernel with the boundary closure folded into its sweeps
  (:mod:`repro.lbm.esoteric`), and ``inplace_bounded_speedup`` their
  ratio (acceptance floor 1.15x, single distribution array asserted),

into ``BENCH_kernels.json`` so ``check_regression.py`` guards the AA
throughput (periodic and bounded) and the probe staying cheap.

Entry points:

* ``python benchmarks/bench_aa.py`` — print the comparison and merge
  the entries into the repo-root ``BENCH_kernels.json``.
* :func:`run_aa_benchmarks` — called by the regression guard's
  ``--suite aa`` / ``--suite all`` sweeps.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

try:  # allow `python benchmarks/bench_aa.py` without PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: Dense reference domain: large enough that the fused kernel's two
#: full distribution arrays overrun the last-level cache while the AA
#: kernel's single array still benefits from its slab blocking.
SHAPE = (64, 64, 64)
#: Steps in the autotune-overhead denominator run.
OVERHEAD_RUN_STEPS = 100


def _dispersion_solver(kernel: str, shape):
    """Bounded voxelized-city solver: inlet at x-low, outflow at x-high."""
    from repro.lbm import LBMSolver
    from repro.lbm.boundaries import EquilibriumVelocityInlet, OutflowBoundary
    from repro.lbm.lattice import D3Q19
    from repro.urban.city import times_square_like
    from repro.urban.voxelize import voxelize_city

    res_m = 384.0 / shape[0]    # same ~384 m footprint at any shape
    solid = voxelize_city(times_square_like(seed=7), shape,
                          resolution_m=res_m, ground_layers=2)
    bcs = [EquilibriumVelocityInlet(D3Q19, 0, "low", (0.04, 0.0, 0.0), 1.0),
           OutflowBoundary(D3Q19, 0, "high")]
    return LBMSolver(shape, tau=0.7, solid=solid, periodic=False,
                     boundaries=bcs, kernel=kernel)


def _throughput_mcells(solver, steps: int, repeats: int) -> float:
    """Best-of-``repeats`` Mcells/s over ``steps``-step batches."""
    solver.step(2)  # warm up (even pair: AA returns to canonical layout)
    cells = float(np.prod(solver.shape))
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        solver.step(steps)
        best = min(best, (time.perf_counter() - t0) / steps)
    return cells / best / 1e6


def run_aa_benchmarks(steps: int = 8, repeats: int = 3,
                      shape=SHAPE) -> dict:
    """Measure AA vs fused plus the autotune probe cost; bench entries."""
    from repro.lbm import LBMSolver, clear_autotune_cache
    from repro.lbm.autotune import choose_kernel

    steps += steps & 1  # AA pairs phases; keep batches on even counts
    results: dict[str, dict] = {}
    mc = {}
    for kind in ("fused", "aa"):
        solver = LBMSolver(shape, tau=0.7, kernel=kind)
        mc[kind] = _throughput_mcells(solver, steps, repeats)
    results["reference_full_step_aa"] = {"mcells_per_s": round(mc["aa"], 3)}
    results["aa_speedup"] = {"ratio": round(mc["aa"] / mc["fused"], 3)}

    # Bounded urban-dispersion case: the in-place AA kernel (rotated
    # boundary closure, single array) vs the split reference pipeline.
    mc_d = {}
    for kind in ("split", "aa"):
        solver = _dispersion_solver(kind, shape)
        mc_d[kind] = _throughput_mcells(solver, steps, repeats)
        if kind == "aa":
            assert solver.kernel_used == "aa", (
                f"bounded case fell back to {solver.kernel_used!r} "
                f"({solver.kernel_reason})")
            assert solver._fg_next_buf is None, (
                "bounded AA kernel allocated a second buffer")
    results["dispersion_step_split"] = {
        "mcells_per_s": round(mc_d["split"], 3)}
    results["dispersion_step_inplace"] = {
        "mcells_per_s": round(mc_d["aa"], 3)}
    results["inplace_bounded_speedup"] = {
        "ratio": round(mc_d["aa"] / mc_d["split"], 3)}

    # Autotune overhead: cold-cache probe time vs a 100-step run at the
    # kernel the probe selected.
    clear_autotune_cache()
    tuned = LBMSolver(shape, tau=0.7, kernel="auto", autotune="measured")
    t0 = time.perf_counter()
    choice = choose_kernel(tuned)
    probe_s = time.perf_counter() - t0
    tuned.step(2)  # warm the selected kernel's workspace
    t0 = time.perf_counter()
    tuned.step(OVERHEAD_RUN_STEPS)
    run_s = time.perf_counter() - t0
    results["autotune_overhead"] = {
        "ratio": round(probe_s / run_s, 4),
        "probe_ms": round(probe_s * 1e3, 2),
        "run_steps": OVERHEAD_RUN_STEPS,
        "chosen": choice.kernel,
    }
    return results


def comparison_lines(results: dict) -> str:
    aa = results["reference_full_step_aa"]["mcells_per_s"]
    ratio = results["aa_speedup"]["ratio"]
    ov = results["autotune_overhead"]
    disp = results["dispersion_step_inplace"]["mcells_per_s"]
    bratio = results["inplace_bounded_speedup"]["ratio"]
    return "\n".join([
        f"  aa {aa:7.3f} Mcells/s on {SHAPE} (aa/fused {ratio:.2f}x)",
        f"  bounded dispersion inplace {disp:7.3f} Mcells/s "
        f"(inplace/split {bratio:.2f}x)",
        f"  autotune probe {ov['probe_ms']:.1f} ms = {ov['ratio']:.1%} of a "
        f"{ov['run_steps']}-step run (picked {ov['chosen']!r})",
    ])


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=str(Path(__file__).resolve().parent.parent
                                         / "BENCH_kernels.json"),
                    help="BENCH json to merge the entries into (if it exists)")
    ap.add_argument("--steps", type=int, default=8)
    ap.add_argument("--repeats", type=int, default=3)
    args = ap.parse_args(argv)
    if args.steps < 1 or args.repeats < 1:
        ap.error("--steps and --repeats must be >= 1")
    results = run_aa_benchmarks(steps=args.steps, repeats=args.repeats)
    for name, entry in sorted(results.items()):
        val = entry.get("mcells_per_s", entry.get("ratio"))
        print(f"  {name:36s} {val}")
    print(comparison_lines(results))
    out = Path(args.out)
    if out.exists():
        data = json.loads(out.read_text())
        data.setdefault("results", {}).update(results)
        out.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        print(f"merged into {out}")
    return 0


# -- pytest-benchmark entry points -------------------------------------


def test_reference_step_aa(benchmark):
    from repro.lbm import LBMSolver
    solver = LBMSolver(SHAPE, tau=0.7, kernel="aa")
    solver.step(2)
    benchmark(lambda: solver.step(2))


def test_reference_step_fused_64(benchmark):
    from repro.lbm import LBMSolver
    solver = LBMSolver(SHAPE, tau=0.7, kernel="fused")
    solver.step(2)
    benchmark(lambda: solver.step(2))


if __name__ == "__main__":
    raise SystemExit(main())
