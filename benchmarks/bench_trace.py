"""Tracing-overhead benchmark: traced vs untraced cluster stepping.

The tracing subsystem (:mod:`repro.perf.trace`) promises two things
about cost: a disabled tracer is a strict no-op (the spans stay in the
hot paths permanently), and an *enabled* tracer observes without
meaningfully slowing the step.  This suite measures both on the serial
cluster backend and records, into ``BENCH_kernels.json``,

* ``cluster_step_untraced`` — Mcells/s with the default ``NULL_TRACER``
  (the shipping configuration, also guarded by the procpool suite),
* ``cluster_step_traced`` — Mcells/s with tracing enabled (every
  solver/driver/network phase recorded),
* ``trace_overhead`` — untraced-over-traced ratio (>= 1 means tracing
  costs something; the entry also logs the measured disabled-span
  cost in ns/call),

so ``check_regression.py --suite trace`` guards the untraced entry
like any other throughput number and the traced entry documents the
observation cost trajectory PR over PR.

Entry points:

* ``python benchmarks/bench_trace.py`` — print the comparison and
  merge the entries into the repo-root ``BENCH_kernels.json``.
* :func:`run_trace_benchmarks` — called by the regression guard's
  ``--suite trace`` / ``--suite all`` sweeps.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

try:  # allow `python benchmarks/bench_trace.py` without PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

SUB_SHAPE = (24, 24, 12)
ARRANGEMENT = (2, 1, 1)


def _make_cluster():
    from repro.core.cluster_lbm import ClusterConfig, CPUClusterLBM
    cfg = ClusterConfig(sub_shape=SUB_SHAPE, arrangement=ARRANGEMENT,
                        tau=0.7, backend="serial")
    return CPUClusterLBM(cfg)


def _step_throughput(cluster, steps: int, repeats: int,
                     traced: bool) -> float:
    """Best-of-``repeats`` Mcells/s; fresh tracer buffer per repeat."""
    tracer = cluster.enable_tracing() if traced else None
    cluster.step(2)  # warm up kernels and the exchange schedule
    cells = float(cluster.cells_total())
    best = float("inf")
    for _ in range(repeats):
        if tracer is not None:
            tracer.clear()
        t0 = time.perf_counter()
        cluster.step(steps)
        best = min(best, (time.perf_counter() - t0) / steps)
    return cells / best / 1e6


def run_trace_benchmarks(steps: int = 8, repeats: int = 3) -> dict:
    """Measure traced vs untraced cluster stepping; bench entries."""
    from repro.perf.trace import disabled_overhead_ns

    mc = {}
    for kind, traced in (("untraced", False), ("traced", True)):
        with _make_cluster() as cluster:
            mc[kind] = _step_throughput(cluster, steps, repeats, traced)
    noop_ns = disabled_overhead_ns()
    return {
        "cluster_step_untraced": {"mcells_per_s": round(mc["untraced"], 3),
                                  "noop_span_ns": round(noop_ns, 1)},
        "cluster_step_traced": {"mcells_per_s": round(mc["traced"], 3)},
        "trace_overhead": {"ratio": round(mc["untraced"] / mc["traced"], 3)},
    }


def comparison_lines(results: dict) -> str:
    un = results["cluster_step_untraced"]
    tr = results["cluster_step_traced"]
    ratio = results["trace_overhead"]["ratio"]
    return (f"  untraced {un['mcells_per_s']:7.3f} | traced "
            f"{tr['mcells_per_s']:7.3f} Mcells/s  "
            f"(untraced/traced {ratio:.2f}x, disabled span "
            f"{un['noop_span_ns']:.0f} ns/call)")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=str(Path(__file__).resolve().parent.parent
                                         / "BENCH_kernels.json"),
                    help="BENCH json to merge the entries into (if it exists)")
    ap.add_argument("--steps", type=int, default=8)
    ap.add_argument("--repeats", type=int, default=3)
    args = ap.parse_args(argv)
    if args.steps < 1 or args.repeats < 1:
        ap.error("--steps and --repeats must be >= 1")
    results = run_trace_benchmarks(steps=args.steps, repeats=args.repeats)
    for name, entry in sorted(results.items()):
        val = entry.get("mcells_per_s", entry.get("ratio"))
        print(f"  {name:36s} {val}")
    print(comparison_lines(results))
    out = Path(args.out)
    if out.exists():
        data = json.loads(out.read_text())
        data.setdefault("results", {}).update(results)
        out.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        print(f"merged into {out}")
    return 0


# -- pytest-benchmark entry points -------------------------------------


def test_cluster_step_untraced(benchmark):
    with _make_cluster() as cluster:
        cluster.step(1)
        benchmark(lambda: cluster.step(1))


def test_cluster_step_traced(benchmark):
    with _make_cluster() as cluster:
        cluster.enable_tracing()
        cluster.step(1)
        benchmark(lambda: cluster.step(1))


if __name__ == "__main__":
    raise SystemExit(main())
