"""Dense vs sparse kernel benchmark on the voxelized urban workload.

The sparse fluid-compacted kernel (:mod:`repro.lbm.sparse`) exists for
the paper's Sec-5 city domain, where a large fraction of lattice sites
is building/ground solid.  This suite voxelizes the procedural city at
three occupancy levels and records, for each level,

* ``urban_step_dense_<level>`` — the fused dense kernel's Mcells/s
  (``kernel="fused"``: full-box sweep, solid sites restored),
* ``urban_step_sparse_<level>`` — the sparse kernel's Mcells/s
  (``kernel="sparse"``: fluid-compacted arrays, folded bounce-back),
* ``sparse_speedup_<level>`` — their ratio,

into ``BENCH_kernels.json`` so ``check_regression.py`` guards the
crossover: sparse should lose slightly at low occupancy (the gather
indirection is pure overhead there) and win above the ~50% selection
threshold.  Every entry also carries the measured solid fraction.

Entry points:

* ``python benchmarks/bench_sparse.py`` — print the comparison and
  merge the entries into the repo-root ``BENCH_kernels.json``.
* :func:`run_sparse_benchmarks` — called by the regression guard's
  ``--suite sparse`` / ``--suite all`` sweeps.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

try:  # allow `python benchmarks/bench_sparse.py` without PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: (level, lattice shape, meters per cell, ground layers) — chosen so
#: the measured total solid fraction lands near 0.10 / 0.43 / 0.62.
OCCUPANCY_LEVELS = (
    ("low", (48, 40, 16), 24.0, 1),
    ("mid", (48, 40, 6), 24.0, 2),
    ("high", (48, 40, 4), 24.0, 2),
)


def _city_mask(shape, resolution_m: float, ground_layers: int) -> np.ndarray:
    from repro.urban.city import times_square_like
    from repro.urban.voxelize import voxelize_city
    city = times_square_like(seed=7)
    return voxelize_city(city, shape, resolution_m=resolution_m,
                         ground_layers=ground_layers)


def _throughput_mcells(solver, steps: int, repeats: int) -> float:
    """Best-of-``repeats`` Mcells/s over ``steps``-step batches."""
    solver.step(2)  # warm up: build kernel workspace/gather tables
    cells = float(np.prod(solver.shape))
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        solver.step(steps)
        best = min(best, (time.perf_counter() - t0) / steps)
    return cells / best / 1e6


def run_sparse_benchmarks(steps: int = 8, repeats: int = 3,
                          levels=OCCUPANCY_LEVELS) -> dict:
    """Measure dense vs sparse at each occupancy level; bench entries."""
    from repro.lbm import LBMSolver

    results: dict[str, dict] = {}
    for level, shape, resolution_m, ground_layers in levels:
        solid = _city_mask(shape, resolution_m, ground_layers)
        occ = round(float(solid.mean()), 3)
        mc = {}
        for kind, kernel in (("dense", "fused"), ("sparse", "sparse")):
            solver = LBMSolver(shape, tau=0.7, solid=solid, kernel=kernel)
            mc[kind] = _throughput_mcells(solver, steps, repeats)
            results[f"urban_step_{kind}_{level}"] = {
                "mcells_per_s": round(mc[kind], 3), "occupancy": occ}
        results[f"sparse_speedup_{level}"] = {
            "ratio": round(mc["sparse"] / mc["dense"], 3), "occupancy": occ}
    return results


def comparison_lines(results: dict) -> str:
    """Per-level dense/sparse table from bench entries."""
    lines = []
    for level, *_ in OCCUPANCY_LEVELS:
        dense = results.get(f"urban_step_dense_{level}")
        sparse = results.get(f"urban_step_sparse_{level}")
        ratio = results.get(f"sparse_speedup_{level}")
        if dense is None or sparse is None:
            continue
        lines.append(
            f"  occ {dense['occupancy']:.2f}: dense "
            f"{dense['mcells_per_s']:7.3f} | sparse "
            f"{sparse['mcells_per_s']:7.3f} Mcells/s"
            + (f"  (sparse/dense {ratio['ratio']:.2f}x)" if ratio else ""))
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=str(Path(__file__).resolve().parent.parent
                                         / "BENCH_kernels.json"),
                    help="BENCH json to merge the entries into (if it exists)")
    ap.add_argument("--steps", type=int, default=8)
    ap.add_argument("--repeats", type=int, default=3)
    args = ap.parse_args(argv)
    if args.steps < 1 or args.repeats < 1:
        ap.error("--steps and --repeats must be >= 1")
    results = run_sparse_benchmarks(steps=args.steps, repeats=args.repeats)
    for name, entry in sorted(results.items()):
        val = entry.get("mcells_per_s", entry.get("ratio"))
        print(f"  {name:36s} {val}")
    print(comparison_lines(results))
    out = Path(args.out)
    if out.exists():
        data = json.loads(out.read_text())
        data.setdefault("results", {}).update(results)
        out.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        print(f"merged into {out}")
    return 0


# -- pytest-benchmark entry points -------------------------------------


def test_urban_step_dense_high(benchmark):
    from repro.lbm import LBMSolver
    level, shape, res, gl = OCCUPANCY_LEVELS[-1]
    solver = LBMSolver(shape, tau=0.7,
                       solid=_city_mask(shape, res, gl), kernel="fused")
    solver.step(1)
    benchmark(lambda: solver.step(1))


def test_urban_step_sparse_high(benchmark):
    from repro.lbm import LBMSolver
    level, shape, res, gl = OCCUPANCY_LEVELS[-1]
    solver = LBMSolver(shape, tau=0.7,
                       solid=_city_mask(shape, res, gl), kernel="sparse")
    solver.step(1)
    benchmark(lambda: solver.step(1))


if __name__ == "__main__":
    raise SystemExit(main())
