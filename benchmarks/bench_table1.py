"""Table 1: per-step execution time for the CPU and GPU clusters and the
GPU/CPU speedup factor, 1..32 nodes, 80^3 sub-domain each (Sec 4.4).

Reproduction target (shape): 6.64x at 1 node, ~5x plateau through 24
nodes, drop to ~4.5x at 32 as the network stops being overlappable.
"""

from conftest import fmt_row

from repro.perf.model import PAPER_NODE_COUNTS, PAPER_TABLE1, table1_rows

WIDTHS = [5, 10, 9, 10, 11, 9, 10, 8, 14]


def _render(rows):
    lines = [fmt_row("nodes", "CPU total", "GPU comp", "GPU<->CPU",
                     "net(total)", "non-ovl", "GPU total", "speedup",
                     "paper tot/spd", widths=WIDTHS)]
    for r in rows:
        ref = PAPER_TABLE1[r.nodes]
        lines.append(fmt_row(r.nodes, r.cpu_total, r.gpu_compute, r.gpu_agp,
                             r.net_total, r.net_nonoverlap, r.gpu_total,
                             r.speedup, f"{ref[4]}/{ref[5]:.2f}",
                             widths=WIDTHS))
    return lines


def test_table1(benchmark, report):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    report("Table 1 — per-step execution time (ms), 80^3 per node",
           _render(rows))
    by_n = {r.nodes: r for r in rows}
    # Shape assertions: who wins, by roughly what factor, where the
    # crossovers fall.
    assert by_n[1].speedup > 6.5
    assert all(4.8 < by_n[n].speedup < 6.0 for n in (8, 12, 16, 20, 24))
    assert by_n[32].speedup < by_n[24].speedup
    for n in PAPER_NODE_COUNTS:
        assert by_n[n].gpu_total < by_n[n].cpu_total   # GPU always wins
