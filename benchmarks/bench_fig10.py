"""Figure 10: parallel efficiency of the GPU cluster vs node count.

Reproduction target (shape): ~94% at 2 nodes decaying to ~67% at 32,
with the visible extra dip past 28 nodes.
"""

from conftest import fmt_row

from repro.perf.model import PAPER_TABLE2, table2_rows


def test_fig10_efficiency_curve(benchmark, report):
    rows = benchmark.pedantic(table2_rows, rounds=1, iterations=1)
    lines = [fmt_row("nodes", "efficiency", "paper", widths=[5, 11, 7])]
    plot = []
    for r in rows[1:]:
        ref = PAPER_TABLE2[r.nodes][2]
        lines.append(fmt_row(r.nodes, f"{r.efficiency * 100:.1f}%",
                             f"{ref}%", widths=[5, 11, 7]))
        plot.append(f"  {r.nodes:>2} | " + "=" * int(round(r.efficiency * 50)))
    report("Figure 10 — GPU-cluster efficiency", lines + [""] + plot)

    by_n = {r.nodes: r for r in rows}
    assert abs(by_n[2].efficiency - 0.935) < 0.05
    assert abs(by_n[32].efficiency - 0.668) < 0.05
    effs = [r.efficiency for r in rows[1:]]
    assert all(b <= a + 1e-9 for a, b in zip(effs, effs[1:]))
    # The 28+ dip is steeper than the 16->24 glide.
    glide = by_n[16].efficiency - by_n[24].efficiency
    dip = by_n[24].efficiency - by_n[32].efficiency
    assert dip > glide
