"""Sec 3: price/performance accounting of the GPU cluster.

"by plugging 32 GPUs into this cluster, we increase its theoretical
peak performance by 16 x 32 = 512 GFlops at a price of $399 x 32 =
$12,768" — cluster peak (16+10) x 32 = 832 GFlops.
"""

from repro.perf.cost import paper_cluster_cost


def test_cost_accounting(benchmark, report):
    c = benchmark.pedantic(paper_cluster_cost, rounds=1, iterations=1)
    report("Sec 3 — cost / peak-performance accounting", [
        f"GPU peak added:     {c.gpu_peak_gflops:6.1f} GFlops   (paper: 512)",
        f"CPU peak:           {c.cpu_peak_gflops:6.1f} GFlops   "
        "(paper: ~10/node)",
        f"cluster peak:       {c.total_peak_gflops:6.1f} GFlops   (paper: 832)",
        f"GPU price:         ${c.gpu_price_usd:8,.0f}       (paper: $12,768)",
        f"GPU MFlops/$:       {c.gpu_mflops_per_dollar:6.1f}          "
        "(paper prints 41.1; 512000/12768 = 40.1)",
    ])
    assert c.gpu_peak_gflops == 512.0
    assert c.total_peak_gflops == 832.0
    assert c.gpu_price_usd == 12_768.0
    assert abs(c.gpu_mflops_per_dollar - 40.1) < 0.1
