"""Figure 9: GPU-cluster / CPU-cluster speedup factor vs node count.

Reproduction target (shape): 6.64 at one node (the no-communication
ceiling), flattening at ~5 for 8-24 nodes, dropping past 28 when the
network can no longer be fully overlapped.
"""

from conftest import fmt_row

from repro.perf.model import PAPER_NODE_COUNTS, PAPER_TABLE1, table1_rows


def test_fig9_speedup_curve(benchmark, report):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    lines = [fmt_row("nodes", "speedup", "paper", widths=[5, 9, 7])]
    for r in rows:
        lines.append(fmt_row(r.nodes, r.speedup, PAPER_TABLE1[r.nodes][5],
                             widths=[5, 9, 7]))
    plot = [f"  {r.nodes:>2} | " + "*" * int(round(r.speedup * 8))
            for r in rows]
    report("Figure 9 — GPU cluster / CPU cluster speedup", lines + [""] + plot)

    by_n = {r.nodes: r for r in rows}
    assert by_n[1].speedup == max(r.speedup for r in rows)   # the ceiling
    for n, ref in PAPER_TABLE1.items():
        assert abs(by_n[n].speedup - ref[5]) / ref[5] < 0.10, n
    # The knee: monotone decrease through the tail.
    tail = [by_n[n].speedup for n in (24, 28, 30, 32)]
    assert all(b < a for a, b in zip(tail, tail[1:]))
