"""Sec 4.4 strong scaling: fixed 160x160x80 lattice, growing node count.

"When the number of nodes increases from 4 to 16, the GPU cluster /
CPU cluster speedup factor drops from 5.3 to 2.4.  When more nodes are
used, the GPU cluster and the CPU cluster gradually converge to achieve
comparable performance."
"""

from conftest import fmt_row

from repro.perf.model import strong_scaling_rows

WIDTHS = [5, 16, 10, 10, 9]


def test_fixed_problem_size(benchmark, report):
    rows = benchmark.pedantic(strong_scaling_rows, rounds=1, iterations=1)
    lines = [fmt_row("nodes", "sub-domain", "GPU ms", "CPU ms", "speedup",
                     widths=WIDTHS)]
    for r in rows:
        lines.append(fmt_row(r["nodes"], str(r["sub_shape"]),
                             r["gpu_total_ms"], r["cpu_total_ms"],
                             r["speedup"], widths=WIDTHS))
    lines.append("paper: 5.3 at 4 nodes -> 2.4 at 16; converging beyond")
    report("Sec 4.4 — fixed 160x160x80 lattice (strong scaling)", lines)

    by_n = {r["nodes"]: r for r in rows}
    assert abs(by_n[4]["speedup"] - 5.3) / 5.3 < 0.15
    assert abs(by_n[16]["speedup"] - 2.4) / 2.4 < 0.15
    # Monotone collapse and convergence toward parity.
    sp = [by_n[n]["speedup"] for n in (4, 8, 16, 32)]
    assert all(b < a for a, b in zip(sp, sp[1:]))
    assert by_n[32]["speedup"] < 1.5
