"""Sequential vs overlapped cluster stepping benchmark.

Measures the same numeric multi-node step twice — once with the
sequential protocol (``ClusterConfig.overlap=False``: collide all,
then exchange) and once with the executed Sec-4.4 overlap (boundary
collide, exchange on the communication thread concurrent with the
inner collide) — and reports both throughputs plus the measured
overlap window.

Entry points:

* ``python benchmarks/bench_overlap.py`` — print the comparison and
  merge the entries into the repo-root ``BENCH_kernels.json`` if it
  exists.
* :func:`run_overlap_benchmarks` — called by ``bench_fused.run_benchmarks``
  so ``check_regression.py`` tracks the overlapped path like any other
  kernel.

Results are bit-identical between the two protocols (pinned by
``tests/test_overlap_cluster.py``); only the wall-clock schedule
differs.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:  # allow `python benchmarks/bench_overlap.py` without PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

# Large enough that the inner-core collide dominates the surface terms:
# at toy sizes the per-region operator calls cost more than the exchange
# they hide, and the overlap runs at a (honest) slowdown.
SUB_SHAPE = (64, 64, 64)
ARRANGEMENT = (2, 1, 1)
MAX_WORKERS = 2
BACKENDS = ("serial", "threads", "processes")


def _best_step_s(cluster, steps: int, repeats: int) -> tuple[float, float]:
    """Best per-step wall time and the last measured overlap window."""
    cluster.step(1)  # warm up exchange buffers / comm thread
    best = float("inf")
    window = 0.0
    for _ in range(repeats):
        t0 = time.perf_counter()
        timing = cluster.step(steps)
        best = min(best, (time.perf_counter() - t0) / steps)
        window = max(window, timing.measured_window_s)
    return best, window


def run_overlap_benchmarks(sub_shape=SUB_SHAPE, arrangement=ARRANGEMENT,
                           steps: int = 2, repeats: int = 3,
                           backend: str = "threads",
                           wire: str = "merged") -> dict:
    """Measure both protocols; returns bench-kernels result entries.

    ``backend`` picks the cluster execution backend.  The committed
    baseline entries are measured with ``"threads"`` (the pre-backend
    behaviour of ``max_workers=2``); under ``"processes"`` the executed
    overlap is ignored — each rank steps sequentially in its own
    process — so the pair mostly measures the process-backend floor.
    ``wire`` picks the halo wire protocol (baseline entries use the
    merged default; ``"perface"`` measures the legacy wire).
    """
    from repro.core import ClusterConfig, CPUClusterLBM

    results: dict[str, dict] = {}
    step_s: dict[str, float] = {}
    for name, overlap in [("cluster_step_no_overlap", False),
                          ("cluster_step_overlapped", True)]:
        cfg = ClusterConfig(sub_shape=sub_shape, arrangement=arrangement,
                            tau=0.7, overlap=overlap, backend=backend,
                            max_workers=MAX_WORKERS, wire=wire)
        with CPUClusterLBM(cfg) as cluster:
            best, window = _best_step_s(cluster, steps, repeats)
            cells = cluster.cells_total()
        step_s[name] = best
        results[name] = {"mcells_per_s": round(cells / best / 1e6, 3)}
        if overlap:
            results[name]["measured_window_ms"] = round(window * 1e3, 4)
    results["overlap_speedup"] = {
        "ratio": round(step_s["cluster_step_no_overlap"]
                       / step_s["cluster_step_overlapped"], 3)}
    return results


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=str(Path(__file__).resolve().parent.parent
                                         / "BENCH_kernels.json"),
                    help="BENCH json to merge the entries into (if it exists)")
    ap.add_argument("--steps", type=int, default=2)
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--backend", default="threads",
                    choices=("all",) + BACKENDS,
                    help="cluster execution backend for the overlap pair; "
                         "'all' measures every backend and prints a one-line "
                         "comparison (baseline entries use 'threads')")
    wire_group = ap.add_mutually_exclusive_group()
    wire_group.add_argument("--merged", dest="wire", action="store_const",
                            const="merged", default="merged",
                            help="merged halo wire (default; one message "
                                 "per neighbor per phase)")
    wire_group.add_argument("--per-face", dest="wire", action="store_const",
                            const="perface",
                            help="legacy per-face halo wire")
    args = ap.parse_args(argv)
    if args.steps < 1 or args.repeats < 1:
        ap.error("--steps and --repeats must be >= 1")
    if args.backend == "all":
        per_backend = {
            backend: run_overlap_benchmarks(steps=args.steps,
                                            repeats=args.repeats,
                                            backend=backend,
                                            wire=args.wire)
            for backend in BACKENDS}
        results = per_backend["threads"]
        print("overlapped step, backends [Mcells/s]: " + " | ".join(
            f"{b} {per_backend[b]['cluster_step_overlapped']['mcells_per_s']:.3f}"
            for b in BACKENDS))
    else:
        results = run_overlap_benchmarks(steps=args.steps,
                                         repeats=args.repeats,
                                         backend=args.backend,
                                         wire=args.wire)
    for name, entry in sorted(results.items()):
        val = entry.get("mcells_per_s", entry.get("ratio"))
        print(f"  {name:36s} {val}")
    out = Path(args.out)
    if args.backend not in ("threads", "all") or args.wire != "merged":
        print(f"not merging into {out}: baseline entries are measured "
              f"with backend='threads' on the merged wire")
    elif out.exists():
        data = json.loads(out.read_text())
        data.setdefault("results", {}).update(results)
        out.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        print(f"merged into {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
