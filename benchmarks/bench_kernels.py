"""Wall-clock benchmarks of the real numeric kernels.

These are not paper numbers — they measure this reproduction's own
substrate (vectorized numpy) so regressions in the hot loops are
caught: collision, streaming, the full reference step, the texture-path
step, the distributed cluster step, and the tracer update.
"""

import numpy as np
import pytest

from repro.core import ClusterConfig, GPUClusterLBM
from repro.gpu.lbm_gpu import GPULBMSolver
from repro.lbm import BGKCollision, D3Q19, LBMSolver, MRTCollision, TracerCloud
from repro.lbm.streaming import stream_periodic

SHAPE = (48, 48, 48)


@pytest.fixture(scope="module")
def f48(request):
    rng = np.random.default_rng(0)
    base = D3Q19.w.astype(np.float32).reshape(19, 1, 1, 1)
    return (base * (1 + 0.01 * rng.standard_normal((19,) + SHAPE))
            ).astype(np.float32)


def test_bgk_collision_kernel(benchmark, f48):
    op = BGKCollision(D3Q19, tau=0.7)
    f = f48.copy()
    benchmark(lambda: op(f))
    cells = np.prod(SHAPE)
    benchmark.extra_info["Mcells/s"] = round(
        cells / benchmark.stats["mean"] / 1e6, 1)


def test_mrt_collision_kernel(benchmark, f48):
    op = MRTCollision(D3Q19, tau=0.7)
    f = f48.copy()
    benchmark(lambda: op(f))


def test_streaming_kernel(benchmark, f48):
    out = np.empty_like(f48)
    benchmark(lambda: stream_periodic(D3Q19, f48, out=out))


def test_reference_full_step(benchmark):
    solver = LBMSolver(SHAPE, tau=0.7)
    benchmark(lambda: solver.step(1))
    benchmark.extra_info["Mcells/s"] = round(
        np.prod(SHAPE) / benchmark.stats["mean"] / 1e6, 1)


def test_texture_path_full_step(benchmark):
    solver = GPULBMSolver((24, 24, 24), tau=0.7)
    benchmark(lambda: solver.step(1))


def test_cluster_numeric_step(benchmark):
    cfg = ClusterConfig(sub_shape=(16, 16, 16), arrangement=(2, 2, 1),
                        tau=0.7)
    cluster = GPUClusterLBM(cfg)
    benchmark(lambda: cluster.step(1))


def test_cluster_timing_model_sweep(benchmark):
    """Cost of evaluating the whole Table-1 timing model once."""
    from repro.perf.model import table1_row
    benchmark(lambda: table1_row(32))


def test_tracer_update(benchmark, f48):
    cloud = TracerCloud(D3Q19, np.full((20000, 3), 24), SHAPE,
                        periodic=True, rng=0)
    benchmark(lambda: cloud.step(f48))
    benchmark.extra_info["Mtracers/s"] = round(
        len(cloud) / benchmark.stats["mean"] / 1e6, 2)
