"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper and prints the
rows next to the published values, so `pytest benchmarks/
--benchmark-only` doubles as the reproduction report.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def report(capsys):
    """Print a reproduction table outside of pytest's capture."""

    def _print(title: str, lines) -> None:
        with capsys.disabled():
            print()
            print(f"=== {title} ===")
            for line in lines:
                print(line)

    return _print


def fmt_row(*cols, widths=None) -> str:
    widths = widths or [10] * len(cols)
    out = []
    for c, w in zip(cols, widths):
        if isinstance(c, float):
            out.append(f"{c:>{w}.2f}")
        else:
            out.append(f"{str(c):>{w}}")
    return " ".join(out)
