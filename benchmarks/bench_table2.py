"""Table 2: GPU-cluster computational power (cells/s), weak-scaling
speedup and efficiency vs node count (Sec 4.4) — plus the supercomputer
comparison quoted alongside it.
"""

from conftest import fmt_row

from repro.perf.comparisons import GPU_CLUSTER_HEADLINE, SUPERCOMPUTER_RESULTS
from repro.perf.model import PAPER_TABLE2, table2_rows

WIDTHS = [5, 12, 9, 11, 16]


def _render(rows):
    lines = [fmt_row("nodes", "Mcells/s", "speedup", "efficiency",
                     "paper(Mc/s,eff%)", widths=WIDTHS)]
    for r in rows:
        ref = PAPER_TABLE2[r.nodes]
        lines.append(fmt_row(
            r.nodes, r.cells_per_s / 1e6,
            f"{r.speedup:.2f}" if r.speedup else "-",
            f"{r.efficiency * 100:.1f}%" if r.efficiency else "-",
            f"{ref[0]}, {ref[2] if ref[2] else '-'}", widths=WIDTHS))
    return lines


def test_table2(benchmark, report):
    rows = benchmark.pedantic(table2_rows, rounds=1, iterations=1)
    lines = _render(rows)
    lines.append("")
    lines.append("Supercomputer comparison (Sec 4.4):")
    for r in SUPERCOMPUTER_RESULTS:
        lines.append(f"  {r.mcells_per_s:>6.1f} Mcells/s  {r.system}"
                     f"  [{r.reference}]")
    ours = rows[-1].cells_per_s / 1e6
    lines.append(f"  {ours:>6.1f} Mcells/s  simulated GPU cluster, 32 nodes "
                 f"(paper: {GPU_CLUSTER_HEADLINE.mcells_per_s})")
    report("Table 2 — throughput and efficiency", lines)

    by_n = {r.nodes: r for r in rows}
    assert abs(by_n[1].cells_per_s / 1e6 - 2.39) < 0.1
    assert abs(by_n[32].cells_per_s / 1e6 - 49.2) < 3.0
    # Efficiency monotone decreasing, ~94% -> ~67% (Fig 10 endpoints).
    effs = [r.efficiency for r in rows if r.efficiency]
    assert all(b <= a + 1e-9 for a, b in zip(effs, effs[1:]))
    # The 2004 ranking is preserved: above the 2002 IBM SP results,
    # below the 2004 Power4 vector code.
    sc = sorted(r.mcells_per_s for r in SUPERCOMPUTER_RESULTS)
    assert sc[-2] < by_n[32].cells_per_s / 1e6 < sc[-1]
