"""The paper's future-work items, implemented and quantified:

* Sec 4.3's open idea: lossless compression of halo traffic (temporal
  delta + byte transposition + DEFLATE), with the ratio measured on
  *real* LBM border data and the CPU cost charged against the overlap
  window;
* Sec 5's online visualization: per-node slab rendering + Sepia
  binary-swap compositing at 450-500 MB/s;
* Sec 3's PCI-Express prediction: multiple GPUs per host exchanging
  intra-node faces over the bus instead of the switch.
"""

from conftest import fmt_row

from repro.core.compression import compression_whatif, measure_flow_halo_ratio
from repro.perf.whatif import multi_gpu_per_node
from repro.viz.compositing import online_visualization_timing


def test_halo_compression(benchmark, report):
    stats = benchmark.pedantic(
        lambda: measure_flow_halo_ratio(steps=6, sub=(10, 10, 8)),
        rounds=1, iterations=1)
    w32 = compression_whatif(nodes=32, ratio=stats.ratio)
    w16 = compression_whatif(nodes=16, ratio=stats.ratio)
    report("Sec 4.3 open idea — lossless halo compression", [
        f"measured ratio on real LBM halos: {stats.ratio:.3f} "
        f"({stats.messages} messages, delta+transpose+DEFLATE)",
        f"32 nodes: net {w32['net_base_ms']:.0f} -> "
        f"{w32['net_compressed_ms']:.0f} ms, codec CPU "
        f"{w32['codec_cpu_ms']:.1f} ms, step total "
        f"{w32['total_base_ms']:.0f} -> {w32['total_compressed_ms']:.0f} ms "
        f"({'worth it' if w32['worth_it'] else 'not worth it'})",
        f"16 nodes: step total unchanged "
        f"({w16['total_base_ms']:.0f} ms) — network already fully hidden",
    ])
    assert stats.ratio < 0.5
    assert w32["worth_it"]
    assert abs(w16["total_compressed_ms"] - w16["total_base_ms"]) < 1e-6


def test_online_visualization(benchmark, report):
    t = benchmark.pedantic(online_visualization_timing, rounds=1,
                           iterations=1)
    report("Sec 5 future work — online visualization (30 nodes, 640x480)", [
        fmt_row("render", "DVI read", "composite", "frame", "fps",
                widths=[8, 9, 10, 8, 6]),
        fmt_row(t.render_s * 1e3, t.readout_s * 1e3, t.composite_s * 1e3,
                t.frame_s * 1e3, t.fps, widths=[8, 9, 10, 8, 6]),
        "simulation step: 310 ms -> visual feedback keeps up",
    ])
    assert t.frame_s < 0.31


def test_multi_gpu_per_node(benchmark, report):
    rows = benchmark.pedantic(multi_gpu_per_node, rounds=1, iterations=1)
    lines = [fmt_row("GPUs/node", "hosts", "net ms", "intra ms", "total ms",
                     "speedup", widths=[9, 6, 8, 9, 9, 8])]
    for r in rows:
        lines.append(fmt_row(r["gpus_per_node"], r["hosts"],
                             r["net_total_ms"], r["intra_node_ms"],
                             r["total_ms"], r["speedup_vs_cpu"],
                             widths=[9, 6, 8, 9, 9, 8]))
    report("Sec 3 prediction — multiple GPUs per node over PCI-Express",
           lines)
    # "will greatly reduce the network load": monotone network shrink.
    nets = [r["net_total_ms"] for r in rows]
    assert all(b < a for a, b in zip(nets, nets[1:]))
    assert rows[-1]["speedup_vs_cpu"] >= rows[0]["speedup_vs_cpu"]
