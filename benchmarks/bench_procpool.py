"""Cluster execution-backend benchmark: serial vs threads vs processes.

Measures the same numeric multi-node step under every
``ClusterConfig.backend`` and records
``cluster_numeric_step_serial`` / ``cluster_numeric_step_threaded`` /
``cluster_numeric_step_processes`` (plus the processes-over-serial
``procpool_speedup`` ratio) into ``BENCH_kernels.json``.  All backends
are bit-identical (pinned by ``tests/test_cluster_procs.py``); only the
execution substrate differs — the processes backend is the one that can
exceed a single core's throughput on multi-core hosts, because each
rank steps its shared-memory sub-domain in its own interpreter.

Entry points:

* ``python benchmarks/bench_procpool.py [--backend all|serial|threads|processes]``
  — print the comparison and merge the entries into the repo-root
  ``BENCH_kernels.json`` if it exists.
* :func:`run_backend_benchmarks` — called by ``bench_fused.run_benchmarks``
  so ``check_regression.py`` tracks all three backends.
* :func:`comparison_line` — the one-line serial/threads/processes table
  shared with ``bench_fused``/``bench_overlap``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:  # allow `python benchmarks/bench_procpool.py` without PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

BACKENDS = ("serial", "threads", "processes")
ENTRY_NAMES = {
    "serial": "cluster_numeric_step_serial",
    "threads": "cluster_numeric_step_threaded",
    "processes": "cluster_numeric_step_processes",
}
SUB_SHAPE = (16, 16, 16)
ARRANGEMENT = (2, 2, 1)


def measure_backend(backend: str, sub_shape=SUB_SHAPE, arrangement=ARRANGEMENT,
                    steps: int = 2, repeats: int = 3,
                    wire: str = "merged") -> float:
    """Best per-step Mcells/s of one backend on the GPU-cluster workload."""
    from repro.core import ClusterConfig, GPUClusterLBM

    cfg = ClusterConfig(sub_shape=sub_shape, arrangement=arrangement, tau=0.7,
                        backend=backend, wire=wire,
                        max_workers=4 if backend == "threads" else 1)
    with GPUClusterLBM(cfg) as cluster:
        cluster.step(1)  # warm up exchange buffers / worker pool
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            cluster.step(steps)
            best = min(best, (time.perf_counter() - t0) / steps)
        cells = cluster.cells_total()
    return cells / best / 1e6


def run_backend_benchmarks(sub_shape=SUB_SHAPE, arrangement=ARRANGEMENT,
                           steps: int = 2, repeats: int = 3,
                           backends=BACKENDS, wire: str = "merged") -> dict:
    """Measure the requested backends; returns bench-kernels entries."""
    results: dict[str, dict] = {}
    for backend in backends:
        mc = measure_backend(backend, sub_shape=sub_shape,
                             arrangement=arrangement, steps=steps,
                             repeats=repeats, wire=wire)
        results[ENTRY_NAMES[backend]] = {"mcells_per_s": round(mc, 3)}
    if "serial" in backends and "processes" in backends:
        results["procpool_speedup"] = {
            "ratio": round(
                results[ENTRY_NAMES["processes"]]["mcells_per_s"]
                / results[ENTRY_NAMES["serial"]]["mcells_per_s"], 3)}
    return results


def comparison_line(results: dict) -> str:
    """One-line serial/threads/processes table from bench entries."""
    cols = []
    for backend in BACKENDS:
        entry = results.get(ENTRY_NAMES[backend])
        if entry is not None:
            cols.append(f"{backend} {entry['mcells_per_s']:.3f}")
    line = "backends [Mcells/s]: " + " | ".join(cols)
    ratio = results.get("procpool_speedup")
    if ratio is not None:
        line += f"  (processes/serial {ratio['ratio']:.2f}x)"
    return line


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--backend", default="all",
                    choices=("all",) + BACKENDS,
                    help="which execution backend(s) to measure")
    ap.add_argument("--out", default=str(Path(__file__).resolve().parent.parent
                                         / "BENCH_kernels.json"),
                    help="BENCH json to merge the entries into (if it exists)")
    ap.add_argument("--steps", type=int, default=2)
    ap.add_argument("--repeats", type=int, default=3)
    wire_group = ap.add_mutually_exclusive_group()
    wire_group.add_argument("--merged", dest="wire", action="store_const",
                            const="merged", default="merged",
                            help="merged halo wire (default; one message "
                                 "per neighbor per phase)")
    wire_group.add_argument("--per-face", dest="wire", action="store_const",
                            const="perface",
                            help="legacy per-face halo wire")
    args = ap.parse_args(argv)
    if args.steps < 1 or args.repeats < 1:
        ap.error("--steps and --repeats must be >= 1")
    backends = BACKENDS if args.backend == "all" else (args.backend,)
    results = run_backend_benchmarks(steps=args.steps, repeats=args.repeats,
                                     backends=backends, wire=args.wire)
    for name, entry in sorted(results.items()):
        val = entry.get("mcells_per_s", entry.get("ratio"))
        print(f"  {name:36s} {val}")
    print(comparison_line(results))
    out = Path(args.out)
    if args.wire != "merged":
        print(f"not merging into {out}: baseline entries are measured "
              f"on the merged wire")
    elif out.exists():
        data = json.loads(out.read_text())
        data.setdefault("results", {}).update(results)
        out.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        print(f"merged into {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
