"""Sec 4.3 network findings as ablations:

1. the scheduled pairwise pattern (Fig 7, with indirect diagonal
   routing) vs the naive fire-everything-at-once direct pattern;
2. fewer-neighbour patterns beat more-neighbour patterns at equal
   volume;
3. the indirect diagonal routing costs only c/(5N) extra bytes;
4. the MPI_Barrier trade-off (helps <= 16 nodes, hurts beyond).
"""

from conftest import fmt_row

from repro.core.decomposition import BlockDecomposition, arrange_nodes_2d
from repro.core.halo import HaloPlan
from repro.core.schedule import CommSchedule, naive_schedule
from repro.net.switch import GigabitSwitch
from repro.perf.whatif import barrier_crossover, barrier_tradeoff


def _compare(nodes: int, sub=(80, 80, 80)):
    arrangement = arrange_nodes_2d(nodes)
    shape = tuple(s * a for s, a in zip(sub, arrangement))
    d = BlockDecomposition(shape, arrangement, periodic=(False, False, False))
    plan = HaloPlan(sub)
    sw = GigabitSwitch()
    sched = sw.phase_time(CommSchedule(d, plan).round_bytes(), nodes)
    naive = sw.naive_time(naive_schedule(d, plan), nodes)
    return sched * 1e3, naive * 1e3


def test_scheduled_vs_naive(benchmark, report):
    counts = (4, 8, 16, 32)
    rows = benchmark.pedantic(lambda: [(n, *_compare(n)) for n in counts],
                              rounds=1, iterations=1)
    lines = [fmt_row("nodes", "scheduled", "naive", "ratio",
                     widths=[5, 11, 9, 7])]
    for n, sched, naive in rows:
        lines.append(fmt_row(n, sched, naive, naive / sched,
                             widths=[5, 11, 9, 7]))
    report("Sec 4.3 — scheduled (Fig 7) vs naive direct exchange (ms)",
           lines)
    for n, sched, naive in rows:
        assert sched < naive, n
    # The advantage widens with node count (more interruptions).
    ratios = [naive / sched for _, sched, naive in rows]
    assert ratios[-1] > ratios[0]


def test_fewer_neighbors_beat_more_neighbors(benchmark, report):
    """Equal bytes, different fan-out (Sec 4.3 finding 2)."""
    sw = GigabitSwitch()
    face = 5 * 80 * 80 * 4

    def run():
        few = sw.naive_time({s: [((s + 1) % 8, 4 * face)]
                             for s in range(8)}, nodes=8)
        many = sw.naive_time({s: [((s + k + 1) % 8, face) for k in range(4)]
                              for s in range(8)}, nodes=8)
        return few * 1e3, many * 1e3

    few, many = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Sec 4.3 — fan-out at equal volume (8 nodes, ms)", [
        f"1 neighbour x 4x bytes: {few:8.1f}",
        f"4 neighbours x 1x bytes: {many:8.1f}",
    ])
    assert many > few


def test_indirect_overhead_tiny(benchmark, report):
    plan = HaloPlan((80, 80, 80))
    frac = benchmark.pedantic(plan.indirect_overhead_fraction, args=(0, 2),
                              rounds=1, iterations=1)
    report("Sec 4.3 — indirect diagonal routing overhead", [
        f"face message growth from piggybacking c=2 edge lines: "
        f"{frac * 100:.2f}%  (paper: c/(5N) = 0.50%)",
    ])
    assert frac == 2 / (5 * 80)


def test_barrier_tradeoff(benchmark, report):
    counts = (4, 8, 16, 20, 24, 32)
    rows = benchmark.pedantic(
        lambda: [barrier_tradeoff(n) for n in counts], rounds=1, iterations=1)
    lines = [fmt_row("nodes", "barrier ms", "desync ms", "winner",
                     widths=[5, 11, 10, 10])]
    for r in rows:
        lines.append(fmt_row(r["nodes"], r["barrier_cost_s"] * 1e3,
                             r["desync_cost_s"] * 1e3,
                             "barrier" if r["barrier_wins"] else "free-run",
                             widths=[5, 11, 10, 10]))
    lines.append(f"crossover at {barrier_crossover()} nodes "
                 "(paper: 16)")
    report("Sec 4.3 — MPI_Barrier per schedule step: help or hurt?", lines)
    assert rows[0]["barrier_wins"]           # 4 nodes
    assert rows[2]["barrier_wins"]           # 16 nodes
    assert not rows[-1]["barrier_wins"]      # 32 nodes
